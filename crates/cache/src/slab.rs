//! Slab storage for cache-line payloads, with shared ownership.
//!
//! A [`DataSlab`] decouples *where line data lives* from *who is talking
//! about it*: producers allocate a slot, pass the compact 8-byte
//! [`DataRef`] handle around (through message payloads, resident cache
//! arrays, backing-store maps, shadow memories), and consumers release
//! their handle when done. Slots are **refcounted**: [`DataSlab::retain`]
//! mints another handle to the same slot, [`DataSlab::release`] drops one,
//! and the slot is recycled only when the last handle goes. That lets a
//! grant *alias* the home's resident line instead of copying 64 bytes, a
//! DRAM fill transfer its in-flight handle straight into the resident
//! array, and a clean eviction cost one counter decrement — the in-memory
//! mirror of the paper's flit-level distinction between header-only and
//! header+line messages (§3.6, Table 1), extended to the resident arrays.
//!
//! Writes go through copy-on-write: [`DataSlab::make_mut`] returns the
//! same handle when it is the sole owner and clones the line into a fresh
//! slot when it is shared, so an aliased reader can never observe another
//! owner's store. [`DataSlab::get_mut`] remains for slots that are never
//! shared (it panics on an aliased slot).
//!
//! Handles are *generational*: each slot carries a generation counter
//! that advances when the slot fills and when it empties, and a
//! [`DataRef`] is only valid while its generation matches. Use-after-free
//! and release-after-free therefore panic deterministically instead of
//! silently reading recycled data — handle-lifetime bugs fail loudly.
//! Aliased handles to the same live slot compare equal (retain does not
//! advance the generation).
//!
//! # Sharded arenas
//!
//! A slab built with [`DataSlab::sharded`] is internally partitioned into
//! up to 256 *arenas*, one per engine shard. Each [`DataRef`] carries its
//! arena in the top 8 bits of the index, so a handle always finds its way
//! back to the arena that owns the slot no matter which shard it has
//! crossed to since. Allocations land in the *home* arena selected with
//! [`DataSlab::set_home`] (the simulator points it at the shard of the
//! event being committed); copy-on-write clones stay in the arena of the
//! slot being split, so refcount traffic for a slot never migrates between
//! arenas. Every arena keeps its own [`SlabStats`] ledger —
//! [`DataSlab::ledger`] exposes one arena's counters for the drain-time
//! audit, and the aggregate accessors ([`DataSlab::stats`],
//! [`DataSlab::live`], [`DataSlab::total_refs`]) sum across arenas.
//! Because slot identity and arena choice are never observable in reports,
//! a fixed commit order produces byte-identical aggregate stats at any
//! arena count.
//!
//! The API is deliberately iteration-free: there is no way to walk the
//! slab, so nothing can depend on slot order and determinism never
//! hinges on hash or allocation order. Each arena's free list is LIFO,
//! making allocation itself deterministic for a deterministic
//! alloc/release sequence (the simulator's sequenced commit loop provides
//! one).
//!
//! Every operation is metered in [`SlabStats`] — allocations, aliases,
//! CoW clones, and the bytes copied vs aliased — so "this path avoids a
//! copy" is a measured claim, not an asserted one.
//!
//! # Examples
//!
//! ```
//! use lacc_cache::{DataSlab, LineData};
//!
//! let mut slab = DataSlab::new();
//! let mut d = LineData::zeroed();
//! d.set_word(0, 42);
//! let r = slab.alloc(d);
//!
//! // Alias the line: one slot, two handles, zero bytes copied.
//! let alias = slab.retain(r);
//! assert_eq!(alias, r);
//! assert_eq!((slab.live(), slab.total_refs()), (1, 2));
//!
//! // Copy-on-write: the shared slot splits on the first write...
//! let own = slab.make_mut(alias);
//! assert_ne!(own, r);
//! slab.get_mut(own).set_word(0, 7);
//! assert_eq!(slab.get(r).word(0), 42, "the other owner is unaffected");
//!
//! // ...and a sole owner writes in place.
//! assert_eq!(slab.make_mut(own), own);
//!
//! slab.release(own);
//! slab.release(r);
//! assert_eq!((slab.live(), slab.total_refs()), (0, 0));
//! assert_eq!(slab.stats().cow_clones, 1);
//! ```

use std::num::NonZeroU32;

use crate::data::LineData;

/// Size of one stored line in bytes (the unit of [`SlabStats`] byte
/// accounting).
const LINE_BYTES: u64 = std::mem::size_of::<LineData>() as u64;

/// Bits of a [`DataRef`] index reserved for the slot within its arena.
const SLOT_BITS: u32 = 24;
/// Mask extracting the slot bits of a [`DataRef`] index.
const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;
/// Maximum arenas a slab can be partitioned into (the arena tag is the
/// top `32 - SLOT_BITS` bits of the index).
pub const MAX_ARENAS: usize = 1 << (32 - SLOT_BITS);

/// Compact handle to a [`LineData`] stored in a [`DataSlab`].
///
/// 8 bytes, `Copy`, and niche-optimized so `Option<DataRef>` is the same
/// size — a payload-bearing message costs one word where it used to cost
/// a whole cache line. The index packs the owning arena in its top 8 bits
/// and the slot in the low 24, so a handle crossing shards still resolves
/// against the arena that allocated it. A handle is valid from
/// [`DataSlab::alloc`] (or [`DataSlab::retain`]) until the matching
/// [`DataSlab::release`]; using it after the slot's last release panics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DataRef {
    index: u32,
    /// Slot generation at allocation time. Odd while the slot is live
    /// (and therefore never zero, providing the niche).
    generation: NonZeroU32,
}

impl DataRef {
    /// The packed slot index (diagnostics only — slots are recycled, so
    /// an index does not identify a logical line).
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }

    /// The arena (engine shard) that owns this handle's slot.
    #[must_use]
    pub fn arena(self) -> usize {
        (self.index >> SLOT_BITS) as usize
    }

    fn slot(self) -> usize {
        (self.index & SLOT_MASK) as usize
    }
}

/// Hot-path copy accounting for a [`DataSlab`] (or one of its arenas).
///
/// The counters are monotone over the slab's lifetime and obey
/// `live() == allocs + cow_clones - frees` and
/// `total_refs() == allocs + cow_clones + retains - releases` at every
/// step — per arena and therefore also for the summed aggregate.
/// `bytes_copied` meters real 64-byte line copies into the slab (fills
/// and CoW clones); `bytes_aliased` meters the copies *avoided* by
/// handing out an alias instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SlabStats {
    /// Slots filled with fresh line content ([`DataSlab::alloc`]).
    pub allocs: u64,
    /// Extra handles minted to live slots ([`DataSlab::retain`]).
    pub retains: u64,
    /// Handles dropped ([`DataSlab::release`], plus the shared handle
    /// [`DataSlab::make_mut`] trades in for its private clone).
    pub releases: u64,
    /// Slots recycled because their last handle was released.
    pub frees: u64,
    /// Shared slots split by [`DataSlab::make_mut`] (copy-on-write).
    pub cow_clones: u64,
    /// Bytes physically copied into slab slots (allocs + CoW clones).
    pub bytes_copied: u64,
    /// Bytes *not* copied because a retain aliased an existing slot.
    pub bytes_aliased: u64,
}

impl SlabStats {
    /// Outstanding handles implied by this ledger
    /// (`allocs + cow_clones + retains - releases`).
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.allocs + self.cow_clones + self.retains - self.releases
    }

    fn absorb(&mut self, other: &SlabStats) {
        self.allocs += other.allocs;
        self.retains += other.retains;
        self.releases += other.releases;
        self.frees += other.frees;
        self.cow_clones += other.cow_clones;
        self.bytes_copied += other.bytes_copied;
        self.bytes_aliased += other.bytes_aliased;
    }
}

#[derive(Clone, Copy, Debug)]
struct SlotMeta {
    /// Odd = occupied, even = vacant. Advances by one when the slot
    /// fills and by one when it empties, so any handle from a previous
    /// occupancy mismatches.
    generation: u32,
    /// Live handles to this slot; 0 iff vacant.
    refs: u32,
}

/// One shard's storage partition: a self-contained generational slab with
/// its own free list and [`SlabStats`] ledger.
#[derive(Clone, Debug)]
struct Arena {
    /// This arena's tag, pre-shifted into index position.
    tag: u32,
    meta: Vec<SlotMeta>,
    data: Vec<LineData>,
    free: Vec<u32>,
    live: usize,
    stats: SlabStats,
}

impl Arena {
    fn new(index: usize, cap: usize) -> Self {
        Arena {
            tag: u32::try_from(index << SLOT_BITS).expect("arena index fits the tag bits"),
            meta: Vec::with_capacity(cap),
            data: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
            stats: SlabStats::default(),
        }
    }

    fn fill_slot(&mut self, data: LineData) -> DataRef {
        let slot = match self.free.pop() {
            Some(i) => {
                let meta = &mut self.meta[i as usize];
                debug_assert_eq!(meta.generation % 2, 0, "free-listed slot must be vacant");
                debug_assert_eq!(meta.refs, 0, "free-listed slot must have no handles");
                meta.generation = meta.generation.wrapping_add(1);
                meta.refs = 1;
                self.data[i as usize] = data;
                i
            }
            None => {
                let i = u32::try_from(self.meta.len()).expect("slab exceeds u32::MAX slots");
                assert!(i <= SLOT_MASK, "slab arena exceeds 2^24 slots");
                self.meta.push(SlotMeta { generation: 1, refs: 1 });
                self.data.push(data);
                i
            }
        };
        self.live += 1;
        self.stats.bytes_copied += LINE_BYTES;
        let generation = NonZeroU32::new(self.meta[slot as usize].generation)
            .expect("odd generation is never zero");
        DataRef { index: self.tag | slot, generation }
    }

    fn meta(&self, r: DataRef, ctx: &str) -> SlotMeta {
        let meta = self.meta[r.slot()];
        assert_eq!(meta.generation, r.generation.get(), "{ctx}");
        meta
    }

    fn meta_mut(&mut self, r: DataRef, ctx: &str) -> &mut SlotMeta {
        let meta = &mut self.meta[r.slot()];
        assert_eq!(meta.generation, r.generation.get(), "{ctx}");
        meta
    }
}

/// Refcounted generational slab of [`LineData`], partitioned into
/// per-shard arenas with free-list slot reuse.
///
/// Storage inside each arena is split struct-of-arrays style: the 8-byte
/// bookkeeping records (`meta`) and the 64-byte payloads (`data`) live in
/// parallel arrays. Handle traffic — retain, release, generation checks —
/// touches only the dense `meta` array, and because [`LineData`] is
/// 64-byte aligned every payload occupies exactly one host cache line (a
/// 72-byte interleaved slot would straddle two for almost every index).
///
/// See the [module docs](self) for the handle-lifetime, copy-on-write,
/// and arena-partitioning rules.
#[derive(Clone, Debug)]
pub struct DataSlab {
    arenas: Vec<Arena>,
    /// Arena receiving new allocations; see [`DataSlab::set_home`].
    home: usize,
}

impl Default for DataSlab {
    fn default() -> Self {
        Self::sharded(1)
    }
}

impl DataSlab {
    /// An empty single-arena slab.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty single-arena slab with room for `cap` lines before
    /// regrowing.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        DataSlab { arenas: vec![Arena::new(0, cap)], home: 0 }
    }

    /// An empty slab partitioned into `shards` arenas (one per engine
    /// shard). The home arena starts at 0.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= shards <= MAX_ARENAS`.
    #[must_use]
    pub fn sharded(shards: usize) -> Self {
        assert!(
            (1..=MAX_ARENAS).contains(&shards),
            "shard count {shards} outside 1..={MAX_ARENAS}"
        );
        DataSlab { arenas: (0..shards).map(|i| Arena::new(i, 0)).collect(), home: 0 }
    }

    /// Number of arenas this slab is partitioned into.
    #[must_use]
    pub fn num_arenas(&self) -> usize {
        self.arenas.len()
    }

    /// Points new allocations at arena `shard`. Existing handles are
    /// unaffected — they stay pinned to the arena that allocated them.
    ///
    /// An out-of-range `shard` is debug-asserted (this sits on the
    /// per-event dispatch path); in release builds the next `alloc`
    /// would panic on the arena index instead.
    pub fn set_home(&mut self, shard: usize) {
        debug_assert!(shard < self.arenas.len(), "home arena {shard} out of range");
        self.home = shard;
    }

    /// One arena's private [`SlabStats`] ledger (the per-shard audit
    /// quantity; [`DataSlab::stats`] is the sum of these).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn ledger(&self, shard: usize) -> SlabStats {
        self.arenas[shard].stats
    }

    fn arena(&self, r: DataRef) -> &Arena {
        &self.arenas[r.arena()]
    }

    fn arena_mut(&mut self, r: DataRef) -> &mut Arena {
        &mut self.arenas[r.arena()]
    }

    /// Stores `data` in the home arena — a recycled (LIFO) or fresh
    /// slot — and returns its handle (refcount 1).
    ///
    /// # Panics
    ///
    /// Panics if the arena would exceed 2^24 slots.
    pub fn alloc(&mut self, data: LineData) -> DataRef {
        let arena = &mut self.arenas[self.home];
        arena.stats.allocs += 1;
        arena.fill_slot(data)
    }

    /// Mints another handle to the slot behind `r` (refcount + 1) without
    /// touching the line content. The returned handle compares equal to
    /// `r`; each copy must eventually be [`DataSlab::release`]d.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale (the slot's last handle was released).
    #[must_use = "retain mints a handle that must be released"]
    pub fn retain(&mut self, r: DataRef) -> DataRef {
        let arena = self.arena_mut(r);
        arena.meta_mut(r, "retain of stale DataRef").refs += 1;
        arena.stats.retains += 1;
        arena.stats.bytes_aliased += LINE_BYTES;
        r
    }

    /// Reads the line behind a live handle.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale (the slot was fully released).
    #[must_use]
    pub fn get(&self, r: DataRef) -> &LineData {
        let arena = self.arena(r);
        arena.meta(r, "stale DataRef: slot was released");
        &arena.data[r.slot()]
    }

    /// Mutable access to the line behind a live handle that is the **sole
    /// owner** of its slot. For possibly-shared handles, go through
    /// [`DataSlab::make_mut`] first.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale, or if the slot is aliased (refcount > 1):
    /// writing through a shared slot would leak the store to every other
    /// owner.
    #[must_use]
    pub fn get_mut(&mut self, r: DataRef) -> &mut LineData {
        let arena = self.arena_mut(r);
        let meta = arena.meta(r, "stale DataRef: slot was released");
        assert_eq!(meta.refs, 1, "get_mut of aliased DataRef: use make_mut");
        &mut arena.data[r.slot()]
    }

    /// Prepares the line behind `r` for writing, copy-on-write style:
    /// returns `r` unchanged when it is the sole owner, otherwise moves
    /// this handle to a fresh private copy of the line (the other owners
    /// keep the original slot) and returns the new handle. The clone is
    /// allocated in `r`'s own arena, so a slot's whole refcount history
    /// stays inside one arena. The input handle must not be used
    /// afterwards — only the returned one.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale.
    #[must_use = "make_mut may move the handle; use the returned DataRef"]
    pub fn make_mut(&mut self, r: DataRef) -> DataRef {
        let arena = self.arena_mut(r);
        let meta = arena.meta_mut(r, "make_mut of stale DataRef");
        if meta.refs == 1 {
            return r;
        }
        meta.refs -= 1;
        let data = arena.data[r.slot()];
        // The writer's handle on the shared slot is dropped (counted as a
        // release) and replaced by a fresh private copy (counted as a CoW
        // clone), keeping the handle ledger balanced.
        arena.stats.releases += 1;
        arena.stats.cow_clones += 1;
        arena.fill_slot(data)
    }

    /// Drops one handle to the slot behind `r`; the slot returns to its
    /// arena's free list when this was the last one. The released handle
    /// (and, after the last release, every copy of it) is dead afterwards.
    ///
    /// # Panics
    ///
    /// Panics on release of a stale handle (double release past zero).
    pub fn release(&mut self, r: DataRef) {
        let arena = self.arena_mut(r);
        let meta = arena.meta_mut(r, "double release of DataRef");
        meta.refs -= 1;
        let last = meta.refs == 0;
        if last {
            meta.generation = meta.generation.wrapping_add(1);
        }
        arena.stats.releases += 1;
        if last {
            arena.live -= 1;
            arena.stats.frees += 1;
            arena.free.push(u32::try_from(r.slot()).expect("slot fits u32"));
        }
    }

    /// Current refcount of the slot behind a live handle.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale.
    #[must_use]
    pub fn refs(&self, r: DataRef) -> u32 {
        self.arena(r).meta(r, "refs of stale DataRef").refs
    }

    /// Number of live (occupied) slots — distinct lines resident in the
    /// slab, summed across arenas.
    #[must_use]
    pub fn live(&self) -> usize {
        self.arenas.iter().map(|a| a.live).sum()
    }

    /// Number of live handles outstanding across all arenas — the
    /// refcount-audit quantity: at a quiescent point it must equal the
    /// number of handles the owners collectively hold.
    #[must_use]
    pub fn total_refs(&self) -> usize {
        let sum: u64 = self.arenas.iter().map(|a| a.stats.outstanding()).sum();
        usize::try_from(sum).expect("outstanding handles fit usize")
    }

    /// The copy-accounting counters, summed across arenas.
    #[must_use]
    pub fn stats(&self) -> SlabStats {
        let mut total = SlabStats::default();
        for arena in &self.arenas {
            total.absorb(&arena.stats);
        }
        total
    }

    /// Total slots ever created (live + free-listed), summed across
    /// arenas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arenas.iter().map(|a| a.meta.len()).sum()
    }

    /// Whether the slab has never allocated (no slots at all).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arenas.iter().all(|a| a.meta.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(tag: u64) -> LineData {
        let mut d = LineData::zeroed();
        d.set_word(0, tag);
        d
    }

    #[test]
    fn alloc_get_release_roundtrip() {
        let mut s = DataSlab::new();
        let a = s.alloc(line(1));
        let b = s.alloc(line(2));
        assert_eq!(s.get(a).word(0), 1);
        assert_eq!(s.get(b).word(0), 2);
        assert_eq!((s.live(), s.len()), (2, 2));
        s.release(a);
        assert_eq!((s.live(), s.len()), (1, 2));
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut s = DataSlab::new();
        let a = s.alloc(line(1));
        let b = s.alloc(line(2));
        s.release(a);
        s.release(b);
        // LIFO: b's slot comes back first.
        let c = s.alloc(line(3));
        assert_eq!(c.index(), b.index());
        let d = s.alloc(line(4));
        assert_eq!(d.index(), a.index());
        assert_eq!(s.len(), 2, "no new slots were created");
    }

    #[test]
    fn get_mut_writes_through() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(0));
        s.get_mut(r).set_word(3, 99);
        assert_eq!(s.get(r).word(3), 99);
    }

    #[test]
    fn retain_aliases_without_copying() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(5));
        let copied_before = s.stats().bytes_copied;
        let alias = s.retain(r);
        assert_eq!(alias, r, "aliases are the same handle value");
        assert_eq!(s.refs(r), 2);
        assert_eq!((s.live(), s.total_refs()), (1, 2));
        assert_eq!(s.stats().bytes_copied, copied_before, "no bytes moved");
        assert_eq!(s.stats().bytes_aliased, 64);
        // The slot survives the first release...
        s.release(alias);
        assert_eq!(s.get(r).word(0), 5);
        assert_eq!((s.live(), s.total_refs()), (1, 1));
        // ...and dies on the last.
        s.release(r);
        assert_eq!((s.live(), s.total_refs()), (0, 0));
    }

    #[test]
    fn make_mut_is_identity_for_sole_owner() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        assert_eq!(s.make_mut(r), r);
        assert_eq!(s.stats().cow_clones, 0);
        s.release(r);
    }

    #[test]
    fn make_mut_splits_shared_slots() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        let alias = s.retain(r);
        let own = s.make_mut(alias);
        assert_ne!(own, r, "CoW must move the writer to a fresh slot");
        assert_eq!((s.refs(r), s.refs(own)), (1, 1));
        s.get_mut(own).set_word(0, 2);
        assert_eq!(s.get(r).word(0), 1, "reader unaffected by the write");
        assert_eq!(s.get(own).word(0), 2);
        assert_eq!(s.stats().cow_clones, 1);
        assert_eq!(s.stats().bytes_copied, 128, "one alloc + one clone");
        s.release(r);
        s.release(own);
        assert_eq!(s.total_refs(), 0);
    }

    #[test]
    #[should_panic(expected = "get_mut of aliased DataRef")]
    fn get_mut_of_shared_slot_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        let _alias = s.retain(r);
        let _ = s.get_mut(r);
    }

    #[test]
    #[should_panic(expected = "stale DataRef")]
    fn stale_read_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        let _ = s.get(r);
    }

    #[test]
    #[should_panic(expected = "stale DataRef")]
    fn stale_read_after_recycle_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        let _r2 = s.alloc(line(2)); // same slot, new generation
        let _ = s.get(r);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        s.release(r);
    }

    #[test]
    #[should_panic(expected = "retain of stale DataRef")]
    fn retain_after_free_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        let _ = s.retain(r);
    }

    #[test]
    fn stats_track_the_ledger_identities() {
        let mut s = DataSlab::new();
        let a = s.alloc(line(1));
        let b = s.retain(a);
        let c = s.make_mut(b); // clone (shared)
        let d = s.alloc(line(2));
        s.release(d);
        let st = s.stats();
        assert_eq!((st.allocs, st.retains, st.cow_clones, st.frees), (2, 1, 1, 1));
        assert_eq!(s.live() as u64, st.allocs + st.cow_clones - st.frees);
        assert_eq!(s.total_refs() as u64, st.allocs + st.cow_clones + st.retains - st.releases);
        s.release(a);
        s.release(c);
        assert_eq!((s.live(), s.total_refs()), (0, 0));
    }

    #[test]
    fn sharded_arenas_tag_handles_and_keep_private_ledgers() {
        let mut s = DataSlab::sharded(3);
        assert_eq!(s.num_arenas(), 3);
        let a = s.alloc(line(1)); // arena 0 (default home)
        s.set_home(2);
        let b = s.alloc(line(2)); // arena 2
        assert_eq!((a.arena(), b.arena()), (0, 2));
        assert_ne!(a.index() >> 24, b.index() >> 24, "arena tag lives in the top bits");

        // Handles resolve against their owning arena regardless of home.
        s.set_home(1);
        assert_eq!(s.get(a).word(0), 1);
        assert_eq!(s.get(b).word(0), 2);

        // Retains and CoW clones stay inside the handle's arena.
        let alias = s.retain(b);
        let own = s.make_mut(alias);
        assert_eq!(own.arena(), 2, "CoW clone must stay in the shared slot's arena");

        // Per-arena ledgers are private; the aggregate is their sum.
        assert_eq!(s.ledger(0).allocs, 1);
        assert_eq!(s.ledger(1), SlabStats::default());
        assert_eq!((s.ledger(2).allocs, s.ledger(2).retains, s.ledger(2).cow_clones), (1, 1, 1));
        assert_eq!(s.stats().allocs, 2);
        assert_eq!(s.total_refs() as u64, s.stats().outstanding());

        s.release(a);
        s.release(b);
        s.release(own);
        assert_eq!((s.live(), s.total_refs()), (0, 0));
        for shard in 0..3 {
            assert_eq!(s.ledger(shard).outstanding(), 0, "arena {shard} must drain to zero");
        }
    }

    #[test]
    #[should_panic(expected = "home arena")]
    #[cfg(debug_assertions)] // the range check is a debug_assert (hot path)
    fn set_home_rejects_out_of_range_arena() {
        let mut s = DataSlab::sharded(2);
        s.set_home(2);
    }

    #[test]
    fn option_dataref_is_pointer_sized() {
        use std::mem::size_of;
        assert_eq!(size_of::<DataRef>(), 8);
        assert_eq!(size_of::<Option<DataRef>>(), 8, "NonZero generation provides the niche");
    }
}
