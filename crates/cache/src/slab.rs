//! Slab storage for cache-line payloads, with shared ownership.
//!
//! A [`DataSlab`] decouples *where line data lives* from *who is talking
//! about it*: producers allocate a slot, pass the compact 8-byte
//! [`DataRef`] handle around (through message payloads, resident cache
//! arrays, backing-store maps, shadow memories), and consumers release
//! their handle when done. Slots are **refcounted**: [`DataSlab::retain`]
//! mints another handle to the same slot, [`DataSlab::release`] drops one,
//! and the slot is recycled only when the last handle goes. That lets a
//! grant *alias* the home's resident line instead of copying 64 bytes, a
//! DRAM fill transfer its in-flight handle straight into the resident
//! array, and a clean eviction cost one counter decrement — the in-memory
//! mirror of the paper's flit-level distinction between header-only and
//! header+line messages (§3.6, Table 1), extended to the resident arrays.
//!
//! Writes go through copy-on-write: [`DataSlab::make_mut`] returns the
//! same handle when it is the sole owner and clones the line into a fresh
//! slot when it is shared, so an aliased reader can never observe another
//! owner's store. [`DataSlab::get_mut`] remains for slots that are never
//! shared (it panics on an aliased slot).
//!
//! Handles are *generational*: each slot carries a generation counter
//! that advances when the slot fills and when it empties, and a
//! [`DataRef`] is only valid while its generation matches. Use-after-free
//! and release-after-free therefore panic deterministically instead of
//! silently reading recycled data — handle-lifetime bugs fail loudly.
//! Aliased handles to the same live slot compare equal (retain does not
//! advance the generation).
//!
//! The API is deliberately iteration-free: there is no way to walk the
//! slab, so nothing can depend on slot order and determinism never
//! hinges on hash or allocation order. The free list is LIFO, making
//! allocation itself deterministic for a deterministic alloc/release
//! sequence (the simulator's single-threaded event loop provides one).
//!
//! Every operation is metered in [`SlabStats`] — allocations, aliases,
//! CoW clones, and the bytes copied vs aliased — so "this path avoids a
//! copy" is a measured claim, not an asserted one.
//!
//! # Examples
//!
//! ```
//! use lacc_cache::{DataSlab, LineData};
//!
//! let mut slab = DataSlab::new();
//! let mut d = LineData::zeroed();
//! d.set_word(0, 42);
//! let r = slab.alloc(d);
//!
//! // Alias the line: one slot, two handles, zero bytes copied.
//! let alias = slab.retain(r);
//! assert_eq!(alias, r);
//! assert_eq!((slab.live(), slab.total_refs()), (1, 2));
//!
//! // Copy-on-write: the shared slot splits on the first write...
//! let own = slab.make_mut(alias);
//! assert_ne!(own, r);
//! slab.get_mut(own).set_word(0, 7);
//! assert_eq!(slab.get(r).word(0), 42, "the other owner is unaffected");
//!
//! // ...and a sole owner writes in place.
//! assert_eq!(slab.make_mut(own), own);
//!
//! slab.release(own);
//! slab.release(r);
//! assert_eq!((slab.live(), slab.total_refs()), (0, 0));
//! assert_eq!(slab.stats().cow_clones, 1);
//! ```

use std::num::NonZeroU32;

use crate::data::LineData;

/// Size of one stored line in bytes (the unit of [`SlabStats`] byte
/// accounting).
const LINE_BYTES: u64 = std::mem::size_of::<LineData>() as u64;

/// Compact handle to a [`LineData`] stored in a [`DataSlab`].
///
/// 8 bytes, `Copy`, and niche-optimized so `Option<DataRef>` is the same
/// size — a payload-bearing message costs one word where it used to cost
/// a whole cache line. A handle is valid from [`DataSlab::alloc`] (or
/// [`DataSlab::retain`]) until the matching [`DataSlab::release`]; using
/// it after the slot's last release panics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DataRef {
    index: u32,
    /// Slot generation at allocation time. Odd while the slot is live
    /// (and therefore never zero, providing the niche).
    generation: NonZeroU32,
}

impl DataRef {
    /// The slot index (diagnostics only — slots are recycled, so an index
    /// does not identify a logical line).
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }
}

/// Hot-path copy accounting for a [`DataSlab`].
///
/// The counters are monotone over the slab's lifetime and obey
/// `live() == allocs + cow_clones - frees` and
/// `total_refs() == allocs + cow_clones + retains - releases` at every
/// step. `bytes_copied` meters real 64-byte line copies into the slab
/// (fills and CoW clones); `bytes_aliased` meters the copies *avoided*
/// by handing out an alias instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SlabStats {
    /// Slots filled with fresh line content ([`DataSlab::alloc`]).
    pub allocs: u64,
    /// Extra handles minted to live slots ([`DataSlab::retain`]).
    pub retains: u64,
    /// Handles dropped ([`DataSlab::release`], plus the shared handle
    /// [`DataSlab::make_mut`] trades in for its private clone).
    pub releases: u64,
    /// Slots recycled because their last handle was released.
    pub frees: u64,
    /// Shared slots split by [`DataSlab::make_mut`] (copy-on-write).
    pub cow_clones: u64,
    /// Bytes physically copied into slab slots (allocs + CoW clones).
    pub bytes_copied: u64,
    /// Bytes *not* copied because a retain aliased an existing slot.
    pub bytes_aliased: u64,
}

#[derive(Clone, Copy, Debug)]
struct SlotMeta {
    /// Odd = occupied, even = vacant. Advances by one when the slot
    /// fills and by one when it empties, so any handle from a previous
    /// occupancy mismatches.
    generation: u32,
    /// Live handles to this slot; 0 iff vacant.
    refs: u32,
}

/// Refcounted generational slab of [`LineData`] with free-list slot
/// reuse.
///
/// Storage is split struct-of-arrays style: the 8-byte bookkeeping
/// records (`meta`) and the 64-byte payloads (`data`) live in parallel
/// arrays. Handle traffic — retain, release, generation checks — touches
/// only the dense `meta` array, and because [`LineData`] is 64-byte
/// aligned every payload occupies exactly one host cache line (a 72-byte
/// interleaved slot would straddle two for almost every index).
///
/// See the [module docs](self) for the handle-lifetime and
/// copy-on-write rules.
#[derive(Clone, Debug, Default)]
pub struct DataSlab {
    meta: Vec<SlotMeta>,
    data: Vec<LineData>,
    free: Vec<u32>,
    live: usize,
    stats: SlabStats,
}

impl DataSlab {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty slab with room for `cap` lines before regrowing.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        DataSlab {
            meta: Vec::with_capacity(cap),
            data: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
            stats: SlabStats::default(),
        }
    }

    fn fill_slot(&mut self, data: LineData) -> DataRef {
        let index = match self.free.pop() {
            Some(i) => {
                let meta = &mut self.meta[i as usize];
                debug_assert_eq!(meta.generation % 2, 0, "free-listed slot must be vacant");
                debug_assert_eq!(meta.refs, 0, "free-listed slot must have no handles");
                meta.generation = meta.generation.wrapping_add(1);
                meta.refs = 1;
                self.data[i as usize] = data;
                i
            }
            None => {
                let i = u32::try_from(self.meta.len()).expect("slab exceeds u32::MAX slots");
                self.meta.push(SlotMeta { generation: 1, refs: 1 });
                self.data.push(data);
                i
            }
        };
        self.live += 1;
        self.stats.bytes_copied += LINE_BYTES;
        let generation = NonZeroU32::new(self.meta[index as usize].generation)
            .expect("odd generation is never zero");
        DataRef { index, generation }
    }

    /// Stores `data` in a recycled (LIFO) or fresh slot and returns its
    /// handle (refcount 1).
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn alloc(&mut self, data: LineData) -> DataRef {
        self.stats.allocs += 1;
        self.fill_slot(data)
    }

    fn meta(&self, r: DataRef, ctx: &str) -> SlotMeta {
        let meta = self.meta[r.index as usize];
        assert_eq!(meta.generation, r.generation.get(), "{ctx}");
        meta
    }

    fn meta_mut(&mut self, r: DataRef, ctx: &str) -> &mut SlotMeta {
        let meta = &mut self.meta[r.index as usize];
        assert_eq!(meta.generation, r.generation.get(), "{ctx}");
        meta
    }

    /// Mints another handle to the slot behind `r` (refcount + 1) without
    /// touching the line content. The returned handle compares equal to
    /// `r`; each copy must eventually be [`DataSlab::release`]d.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale (the slot's last handle was released).
    #[must_use = "retain mints a handle that must be released"]
    pub fn retain(&mut self, r: DataRef) -> DataRef {
        self.meta_mut(r, "retain of stale DataRef").refs += 1;
        self.stats.retains += 1;
        self.stats.bytes_aliased += LINE_BYTES;
        r
    }

    /// Reads the line behind a live handle.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale (the slot was fully released).
    #[must_use]
    pub fn get(&self, r: DataRef) -> &LineData {
        self.meta(r, "stale DataRef: slot was released");
        &self.data[r.index as usize]
    }

    /// Mutable access to the line behind a live handle that is the **sole
    /// owner** of its slot. For possibly-shared handles, go through
    /// [`DataSlab::make_mut`] first.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale, or if the slot is aliased (refcount > 1):
    /// writing through a shared slot would leak the store to every other
    /// owner.
    #[must_use]
    pub fn get_mut(&mut self, r: DataRef) -> &mut LineData {
        let meta = self.meta(r, "stale DataRef: slot was released");
        assert_eq!(meta.refs, 1, "get_mut of aliased DataRef: use make_mut");
        &mut self.data[r.index as usize]
    }

    /// Prepares the line behind `r` for writing, copy-on-write style:
    /// returns `r` unchanged when it is the sole owner, otherwise moves
    /// this handle to a fresh private copy of the line (the other owners
    /// keep the original slot) and returns the new handle. The input
    /// handle must not be used afterwards — only the returned one.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale.
    #[must_use = "make_mut may move the handle; use the returned DataRef"]
    pub fn make_mut(&mut self, r: DataRef) -> DataRef {
        let meta = self.meta_mut(r, "make_mut of stale DataRef");
        if meta.refs == 1 {
            return r;
        }
        meta.refs -= 1;
        let data = self.data[r.index as usize];
        // The writer's handle on the shared slot is dropped (counted as a
        // release) and replaced by a fresh private copy (counted as a CoW
        // clone), keeping the handle ledger balanced.
        self.stats.releases += 1;
        self.stats.cow_clones += 1;
        self.fill_slot(data)
    }

    /// Drops one handle to the slot behind `r`; the slot returns to the
    /// free list when this was the last one. The released handle (and,
    /// after the last release, every copy of it) is dead afterwards.
    ///
    /// # Panics
    ///
    /// Panics on release of a stale handle (double release past zero).
    pub fn release(&mut self, r: DataRef) {
        let meta = self.meta_mut(r, "double release of DataRef");
        meta.refs -= 1;
        let last = meta.refs == 0;
        if last {
            meta.generation = meta.generation.wrapping_add(1);
        }
        self.stats.releases += 1;
        if last {
            self.live -= 1;
            self.stats.frees += 1;
            self.free.push(r.index);
        }
    }

    /// Current refcount of the slot behind a live handle.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale.
    #[must_use]
    pub fn refs(&self, r: DataRef) -> u32 {
        self.meta(r, "refs of stale DataRef").refs
    }

    /// Number of live (occupied) slots — distinct lines resident in the
    /// slab.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Number of live handles outstanding across all slots — the
    /// refcount-audit quantity: at a quiescent point it must equal the
    /// number of handles the owners collectively hold.
    #[must_use]
    pub fn total_refs(&self) -> usize {
        let s = &self.stats;
        usize::try_from(s.allocs + s.cow_clones + s.retains - s.releases)
            .expect("outstanding handles fit usize")
    }

    /// The copy-accounting counters.
    #[must_use]
    pub fn stats(&self) -> SlabStats {
        self.stats
    }

    /// Total slots ever created (live + free-listed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the slab has never allocated (no slots at all).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(tag: u64) -> LineData {
        let mut d = LineData::zeroed();
        d.set_word(0, tag);
        d
    }

    #[test]
    fn alloc_get_release_roundtrip() {
        let mut s = DataSlab::new();
        let a = s.alloc(line(1));
        let b = s.alloc(line(2));
        assert_eq!(s.get(a).word(0), 1);
        assert_eq!(s.get(b).word(0), 2);
        assert_eq!((s.live(), s.len()), (2, 2));
        s.release(a);
        assert_eq!((s.live(), s.len()), (1, 2));
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut s = DataSlab::new();
        let a = s.alloc(line(1));
        let b = s.alloc(line(2));
        s.release(a);
        s.release(b);
        // LIFO: b's slot comes back first.
        let c = s.alloc(line(3));
        assert_eq!(c.index(), b.index());
        let d = s.alloc(line(4));
        assert_eq!(d.index(), a.index());
        assert_eq!(s.len(), 2, "no new slots were created");
    }

    #[test]
    fn get_mut_writes_through() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(0));
        s.get_mut(r).set_word(3, 99);
        assert_eq!(s.get(r).word(3), 99);
    }

    #[test]
    fn retain_aliases_without_copying() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(5));
        let copied_before = s.stats().bytes_copied;
        let alias = s.retain(r);
        assert_eq!(alias, r, "aliases are the same handle value");
        assert_eq!(s.refs(r), 2);
        assert_eq!((s.live(), s.total_refs()), (1, 2));
        assert_eq!(s.stats().bytes_copied, copied_before, "no bytes moved");
        assert_eq!(s.stats().bytes_aliased, 64);
        // The slot survives the first release...
        s.release(alias);
        assert_eq!(s.get(r).word(0), 5);
        assert_eq!((s.live(), s.total_refs()), (1, 1));
        // ...and dies on the last.
        s.release(r);
        assert_eq!((s.live(), s.total_refs()), (0, 0));
    }

    #[test]
    fn make_mut_is_identity_for_sole_owner() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        assert_eq!(s.make_mut(r), r);
        assert_eq!(s.stats().cow_clones, 0);
        s.release(r);
    }

    #[test]
    fn make_mut_splits_shared_slots() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        let alias = s.retain(r);
        let own = s.make_mut(alias);
        assert_ne!(own, r, "CoW must move the writer to a fresh slot");
        assert_eq!((s.refs(r), s.refs(own)), (1, 1));
        s.get_mut(own).set_word(0, 2);
        assert_eq!(s.get(r).word(0), 1, "reader unaffected by the write");
        assert_eq!(s.get(own).word(0), 2);
        assert_eq!(s.stats().cow_clones, 1);
        assert_eq!(s.stats().bytes_copied, 128, "one alloc + one clone");
        s.release(r);
        s.release(own);
        assert_eq!(s.total_refs(), 0);
    }

    #[test]
    #[should_panic(expected = "get_mut of aliased DataRef")]
    fn get_mut_of_shared_slot_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        let _alias = s.retain(r);
        let _ = s.get_mut(r);
    }

    #[test]
    #[should_panic(expected = "stale DataRef")]
    fn stale_read_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        let _ = s.get(r);
    }

    #[test]
    #[should_panic(expected = "stale DataRef")]
    fn stale_read_after_recycle_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        let _r2 = s.alloc(line(2)); // same slot, new generation
        let _ = s.get(r);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        s.release(r);
    }

    #[test]
    #[should_panic(expected = "retain of stale DataRef")]
    fn retain_after_free_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        let _ = s.retain(r);
    }

    #[test]
    fn stats_track_the_ledger_identities() {
        let mut s = DataSlab::new();
        let a = s.alloc(line(1));
        let b = s.retain(a);
        let c = s.make_mut(b); // clone (shared)
        let d = s.alloc(line(2));
        s.release(d);
        let st = s.stats();
        assert_eq!((st.allocs, st.retains, st.cow_clones, st.frees), (2, 1, 1, 1));
        assert_eq!(s.live() as u64, st.allocs + st.cow_clones - st.frees);
        assert_eq!(s.total_refs() as u64, st.allocs + st.cow_clones + st.retains - st.releases);
        s.release(a);
        s.release(c);
        assert_eq!((s.live(), s.total_refs()), (0, 0));
    }

    #[test]
    fn option_dataref_is_pointer_sized() {
        use std::mem::size_of;
        assert_eq!(size_of::<DataRef>(), 8);
        assert_eq!(size_of::<Option<DataRef>>(), 8, "NonZero generation provides the niche");
    }
}
