//! Slab storage for cache-line payloads.
//!
//! A [`DataSlab`] decouples *where line data lives* from *who is talking
//! about it*: producers allocate a slot, pass the compact 8-byte
//! [`DataRef`] handle around (through message payloads, backing-store
//! maps, shadow memories), and the final consumer releases the slot back
//! to a free list. This keeps full 64-byte [`LineData`] copies off every
//! hop of a message's life — only the handle moves — which is the
//! in-memory mirror of the paper's flit-level distinction between
//! header-only and header+line messages (§3.6, Table 1).
//!
//! Handles are *generational*: each slot carries a generation counter
//! that advances on every allocate and release, and a [`DataRef`] is only
//! valid while its generation matches. Use-after-release and double
//! release therefore panic deterministically instead of silently reading
//! recycled data — handle-lifetime bugs fail loudly.
//!
//! The API is deliberately iteration-free: there is no way to walk the
//! slab, so nothing can depend on slot order and determinism never
//! hinges on hash or allocation order. The free list is LIFO, making
//! allocation itself deterministic for a deterministic alloc/release
//! sequence (the simulator's single-threaded event loop provides one).
//!
//! # Examples
//!
//! ```
//! use lacc_cache::{DataSlab, LineData};
//!
//! let mut slab = DataSlab::new();
//! let mut d = LineData::zeroed();
//! d.set_word(0, 42);
//! let r = slab.alloc(d);
//! assert_eq!(slab.get(r).word(0), 42);
//! assert_eq!(slab.live(), 1);
//! let back = slab.release(r);
//! assert_eq!(back.word(0), 42);
//! assert_eq!(slab.live(), 0);
//! ```

use std::num::NonZeroU32;

use crate::data::LineData;

/// Compact handle to a [`LineData`] stored in a [`DataSlab`].
///
/// 8 bytes, `Copy`, and niche-optimized so `Option<DataRef>` is the same
/// size — a payload-bearing message costs one word where it used to cost
/// a whole cache line. A handle is valid from [`DataSlab::alloc`] until
/// the matching [`DataSlab::release`]; using it afterwards panics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DataRef {
    index: u32,
    /// Slot generation at allocation time. Odd while the slot is live
    /// (and therefore never zero, providing the niche).
    generation: NonZeroU32,
}

impl DataRef {
    /// The slot index (diagnostics only — slots are recycled, so an index
    /// does not identify a logical line).
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }
}

#[derive(Clone, Debug)]
struct Slot {
    /// Odd = occupied, even = vacant. Advances by one on each allocate
    /// and each release, so any stale handle's generation mismatches.
    generation: u32,
    data: LineData,
}

/// Generational slab of [`LineData`] with free-list slot reuse.
///
/// See the [module docs](self) for the handle-lifetime rules.
#[derive(Clone, Debug, Default)]
pub struct DataSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl DataSlab {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty slab with room for `cap` lines before regrowing.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        DataSlab { slots: Vec::with_capacity(cap), free: Vec::new(), live: 0 }
    }

    /// Stores `data` in a recycled (LIFO) or fresh slot and returns its
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn alloc(&mut self, data: LineData) -> DataRef {
        let index = match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                debug_assert_eq!(slot.generation % 2, 0, "free-listed slot must be vacant");
                slot.generation = slot.generation.wrapping_add(1);
                slot.data = data;
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("slab exceeds u32::MAX slots");
                self.slots.push(Slot { generation: 1, data });
                i
            }
        };
        self.live += 1;
        let generation = NonZeroU32::new(self.slots[index as usize].generation)
            .expect("odd generation is never zero");
        DataRef { index, generation }
    }

    /// Reads the line behind a live handle.
    ///
    /// # Panics
    ///
    /// Panics if `r` was already released (generation mismatch).
    #[must_use]
    pub fn get(&self, r: DataRef) -> &LineData {
        let slot = &self.slots[r.index as usize];
        assert_eq!(slot.generation, r.generation.get(), "stale DataRef: slot was released");
        &slot.data
    }

    /// Mutable access to the line behind a live handle.
    ///
    /// # Panics
    ///
    /// Panics if `r` was already released (generation mismatch).
    #[must_use]
    pub fn get_mut(&mut self, r: DataRef) -> &mut LineData {
        let slot = &mut self.slots[r.index as usize];
        assert_eq!(slot.generation, r.generation.get(), "stale DataRef: slot was released");
        &mut slot.data
    }

    /// Releases the slot behind `r` back to the free list, returning its
    /// line. The handle (and any copy of it) is dead afterwards.
    ///
    /// # Panics
    ///
    /// Panics on double release (generation mismatch).
    pub fn release(&mut self, r: DataRef) -> LineData {
        let slot = &mut self.slots[r.index as usize];
        assert_eq!(slot.generation, r.generation.get(), "double release of DataRef");
        slot.generation = slot.generation.wrapping_add(1);
        self.live -= 1;
        self.free.push(r.index);
        slot.data
    }

    /// Number of live (allocated, unreleased) lines — the leak-check
    /// quantity: at a quiescent point it must equal the number of handles
    /// the owner still holds.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever created (live + free-listed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the slab has never allocated (no slots at all).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(tag: u64) -> LineData {
        let mut d = LineData::zeroed();
        d.set_word(0, tag);
        d
    }

    #[test]
    fn alloc_get_release_roundtrip() {
        let mut s = DataSlab::new();
        let a = s.alloc(line(1));
        let b = s.alloc(line(2));
        assert_eq!(s.get(a).word(0), 1);
        assert_eq!(s.get(b).word(0), 2);
        assert_eq!((s.live(), s.len()), (2, 2));
        assert_eq!(s.release(a).word(0), 1);
        assert_eq!((s.live(), s.len()), (1, 2));
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut s = DataSlab::new();
        let a = s.alloc(line(1));
        let b = s.alloc(line(2));
        s.release(a);
        s.release(b);
        // LIFO: b's slot comes back first.
        let c = s.alloc(line(3));
        assert_eq!(c.index(), b.index());
        let d = s.alloc(line(4));
        assert_eq!(d.index(), a.index());
        assert_eq!(s.len(), 2, "no new slots were created");
    }

    #[test]
    fn get_mut_writes_through() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(0));
        s.get_mut(r).set_word(3, 99);
        assert_eq!(s.get(r).word(3), 99);
    }

    #[test]
    #[should_panic(expected = "stale DataRef")]
    fn stale_read_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        let _ = s.get(r);
    }

    #[test]
    #[should_panic(expected = "stale DataRef")]
    fn stale_read_after_recycle_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        let _r2 = s.alloc(line(2)); // same slot, new generation
        let _ = s.get(r);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut s = DataSlab::new();
        let r = s.alloc(line(1));
        s.release(r);
        let _ = s.release(r);
    }

    #[test]
    fn option_dataref_is_pointer_sized() {
        use std::mem::size_of;
        assert_eq!(size_of::<DataRef>(), 8);
        assert_eq!(size_of::<Option<DataRef>>(), 8, "NonZero generation provides the niche");
    }
}
