//! Property test: [`DataSlab`] against a `HashMap` reference model.
//!
//! Interleaved allocations, releases, reads and writes must behave exactly
//! like a map from handle to line content — no slot aliasing, no content
//! loss across free-list recycling — and the live count must track the
//! model's size at every step.

use std::collections::HashMap;

use lacc_cache::{DataRef, DataSlab, LineData};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Allocate a line whose words are all this tag.
    Alloc(u64),
    /// Read back the `k % live`-th oldest live handle and compare.
    Check(usize),
    /// Overwrite one word of the `k % live`-th oldest live handle.
    Write(usize, usize, u64),
    /// Release the `k % live`-th oldest live handle.
    Release(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1000).prop_map(Op::Alloc),
        (0usize..64).prop_map(Op::Check),
        (0usize..64, 0usize..8, 0u64..1000).prop_map(|(k, w, v)| Op::Write(k, w, v)),
        (0usize..64).prop_map(Op::Release),
    ]
}

fn tagged(tag: u64) -> LineData {
    LineData::from_words([tag; 8])
}

proptest! {
    #[test]
    fn slab_matches_hashmap_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut slab = DataSlab::new();
        // Insertion-ordered list of live handles + the model contents.
        let mut handles: Vec<DataRef> = Vec::new();
        let mut model: HashMap<DataRef, LineData> = HashMap::new();
        for op in ops {
            match op {
                Op::Alloc(tag) => {
                    let r = slab.alloc(tagged(tag));
                    prop_assert!(!model.contains_key(&r), "handle reuse while live");
                    model.insert(r, tagged(tag));
                    handles.push(r);
                }
                Op::Check(k) if !handles.is_empty() => {
                    let r = handles[k % handles.len()];
                    prop_assert_eq!(slab.get(r), &model[&r]);
                }
                Op::Write(k, word, v) if !handles.is_empty() => {
                    let r = handles[k % handles.len()];
                    slab.get_mut(r).set_word(word, v);
                    model.get_mut(&r).unwrap().set_word(word, v);
                }
                Op::Release(k) if !handles.is_empty() => {
                    let r = handles.remove(k % handles.len());
                    let expected = model.remove(&r).unwrap();
                    prop_assert_eq!(slab.release(r), expected);
                }
                _ => {} // Check/Write/Release with nothing live: no-op.
            }
            prop_assert_eq!(slab.live(), model.len());
        }
        // Drain; the slab must end empty of live lines.
        for r in handles {
            prop_assert_eq!(slab.release(r), model.remove(&r).unwrap());
        }
        prop_assert_eq!(slab.live(), 0);
    }

    /// Every handle that survives a release/realloc cycle of its slot is
    /// detected as stale (generation mismatch panics).
    #[test]
    fn recycled_slots_reject_stale_handles(tags in proptest::collection::vec(0u64..100, 1..20)) {
        let mut slab = DataSlab::new();
        let stale: Vec<DataRef> = tags.iter().map(|&t| slab.alloc(tagged(t))).collect();
        for &r in &stale {
            slab.release(r);
        }
        // Reallocate into the same (recycled) slots.
        let _fresh: Vec<DataRef> = tags.iter().map(|&t| slab.alloc(tagged(t))).collect();
        for &r in &stale {
            let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = slab.get(r);
            }));
            prop_assert!(got.is_err(), "stale handle {r:?} must panic");
        }
    }
}
