//! Property test: the refcounted [`DataSlab`] against a `HashMap`
//! reference model.
//!
//! Interleaved allocations, retains, copy-on-write writes and releases
//! must behave exactly like a map from handle to (line content, refcount)
//! plus a multiset of outstanding handles — aliased handles read the same
//! bytes, a write splits a shared slot without disturbing its other
//! owners, and no content is lost across free-list recycling. The live
//! count, outstanding-handle count and per-slot refcounts must track the
//! model at every step, and the [`SlabStats`] ledger identities must hold
//! throughout.

use std::collections::HashMap;

use lacc_cache::{DataRef, DataSlab, LineData, SlabStats};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Allocate a line whose words are all this tag.
    Alloc(u64),
    /// Retain (alias) the `k % len`-th outstanding handle.
    Retain(usize),
    /// Read back the `k % len`-th outstanding handle and compare.
    Check(usize),
    /// Write one word through the `k % len`-th outstanding handle,
    /// copy-on-write style (`make_mut` then `get_mut`).
    Write(usize, usize, u64),
    /// Release the `k % len`-th outstanding handle.
    Release(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1000).prop_map(Op::Alloc),
        (0usize..64).prop_map(Op::Retain),
        (0usize..64).prop_map(Op::Check),
        (0usize..64, 0usize..8, 0u64..1000).prop_map(|(k, w, v)| Op::Write(k, w, v)),
        (0usize..64).prop_map(Op::Release),
    ]
}

fn tagged(tag: u64) -> LineData {
    LineData::from_words([tag; 8])
}

/// The reference model: per-slot content + refcount, and the multiset of
/// outstanding handles (aliases appear once per retain).
struct Model {
    slots: HashMap<DataRef, (LineData, u32)>,
    handles: Vec<DataRef>,
}

fn check_ledger(slab: &DataSlab, model: &Model) -> Result<(), TestCaseError> {
    prop_assert_eq!(slab.live(), model.slots.len());
    prop_assert_eq!(slab.total_refs(), model.handles.len());
    let s: SlabStats = slab.stats();
    prop_assert_eq!(slab.live() as u64, s.allocs + s.cow_clones - s.frees);
    prop_assert_eq!(slab.total_refs() as u64, s.allocs + s.cow_clones + s.retains - s.releases);
    prop_assert_eq!(s.bytes_copied, 64 * (s.allocs + s.cow_clones));
    prop_assert_eq!(s.bytes_aliased, 64 * s.retains);
    Ok(())
}

proptest! {
    #[test]
    fn slab_matches_refcounted_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut slab = DataSlab::new();
        let mut model = Model { slots: HashMap::new(), handles: Vec::new() };
        for op in ops {
            match op {
                Op::Alloc(tag) => {
                    let r = slab.alloc(tagged(tag));
                    prop_assert!(!model.slots.contains_key(&r), "handle reuse while live");
                    model.slots.insert(r, (tagged(tag), 1));
                    model.handles.push(r);
                }
                Op::Retain(k) if !model.handles.is_empty() => {
                    let r = model.handles[k % model.handles.len()];
                    let alias = slab.retain(r);
                    prop_assert_eq!(alias, r, "aliases are the same handle value");
                    model.slots.get_mut(&r).unwrap().1 += 1;
                    model.handles.push(alias);
                }
                Op::Check(k) if !model.handles.is_empty() => {
                    let r = model.handles[k % model.handles.len()];
                    prop_assert_eq!(slab.get(r), &model.slots[&r].0);
                    prop_assert_eq!(slab.refs(r), model.slots[&r].1);
                }
                Op::Write(k, word, v) if !model.handles.is_empty() => {
                    let idx = k % model.handles.len();
                    let r = model.handles[idx];
                    let shared = model.slots[&r].1 > 1;
                    let own = slab.make_mut(r);
                    if shared {
                        // CoW split: the writer moves to a private slot,
                        // the other owners keep the original content.
                        prop_assert!(own != r, "make_mut of shared slot must move");
                        let content = model.slots[&r].0;
                        model.slots.get_mut(&r).unwrap().1 -= 1;
                        prop_assert!(!model.slots.contains_key(&own), "fresh slot already live");
                        model.slots.insert(own, (content, 1));
                        model.handles[idx] = own;
                    } else {
                        prop_assert_eq!(own, r, "sole owner writes in place");
                    }
                    slab.get_mut(own).set_word(word, v);
                    model.slots.get_mut(&own).unwrap().0.set_word(word, v);
                }
                Op::Release(k) if !model.handles.is_empty() => {
                    let r = model.handles.remove(k % model.handles.len());
                    slab.release(r);
                    let count = &mut model.slots.get_mut(&r).unwrap().1;
                    *count -= 1;
                    if *count == 0 {
                        model.slots.remove(&r);
                    }
                }
                _ => {} // Op with nothing outstanding: no-op.
            }
            check_ledger(&slab, &model)?;
        }
        // Drain; the slab must end empty of live lines and handles.
        while let Some(r) = model.handles.pop() {
            prop_assert_eq!(slab.get(r), &model.slots[&r].0);
            slab.release(r);
            let count = &mut model.slots.get_mut(&r).unwrap().1;
            *count -= 1;
            if *count == 0 {
                model.slots.remove(&r);
            }
        }
        prop_assert_eq!(slab.live(), 0);
        prop_assert_eq!(slab.total_refs(), 0);
    }

    /// Every handle that survives the full release/realloc cycle of its
    /// slot is detected as stale: reads, retains and releases (the
    /// double-release case) all panic on the generation mismatch.
    #[test]
    fn recycled_slots_reject_stale_handles(tags in proptest::collection::vec(0u64..100, 1..20)) {
        let mut slab = DataSlab::new();
        let stale: Vec<DataRef> = tags.iter().map(|&t| slab.alloc(tagged(t))).collect();
        for &r in &stale {
            slab.release(r);
        }
        // Reallocate into the same (recycled) slots.
        let _fresh: Vec<DataRef> = tags.iter().map(|&t| slab.alloc(tagged(t))).collect();
        for &r in &stale {
            let read = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = slab.get(r);
            }));
            prop_assert!(read.is_err(), "stale read of {r:?} must panic");
            let retain = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = slab.retain(r);
            }));
            prop_assert!(retain.is_err(), "stale retain of {r:?} must panic");
            let release = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                slab.release(r);
            }));
            prop_assert!(release.is_err(), "double release of {r:?} must panic");
        }
    }

    /// A retained slot survives any prefix of its releases: content stays
    /// readable through every remaining alias until the last one goes.
    #[test]
    fn aliases_keep_slots_alive(extra in 1usize..8, drop_order in proptest::bool::ANY) {
        let mut slab = DataSlab::new();
        let first = slab.alloc(tagged(7));
        let mut all = vec![first];
        for _ in 0..extra {
            all.push(slab.retain(first));
        }
        if drop_order {
            all.reverse();
        }
        let last = all.pop().unwrap();
        for r in all {
            slab.release(r);
            prop_assert_eq!(slab.get(last), &tagged(7), "survivors still read the line");
        }
        prop_assert_eq!(slab.refs(last), 1);
        slab.release(last);
        prop_assert_eq!(slab.live(), 0);
    }
}

/// One step of simulated cross-shard message traffic against a sharded
/// slab (see `sharded_traffic_balances_per_shard_ledgers`).
#[derive(Clone, Copy, Debug)]
enum ShardOp {
    /// Re-point the allocation home (the committing event's shard).
    SetHome(usize),
    /// Allocate at the current home.
    Alloc(u64),
    /// Retain the `k % len`-th handle — wherever its arena is; this is
    /// the "payload aliased by a remote tile" case.
    Retain(usize),
    /// CoW-write the `k % len`-th handle from a foreign home.
    Write(usize, u64),
    /// Release the `k % len`-th handle — the "payload consumed on the
    /// far side of a message" case.
    Release(usize),
}

fn shard_op_strategy(shards: usize) -> impl Strategy<Value = ShardOp> {
    prop_oneof![
        (0..shards).prop_map(ShardOp::SetHome),
        (0u64..1000).prop_map(ShardOp::Alloc),
        (0usize..64).prop_map(ShardOp::Retain),
        (0usize..64, 0u64..1000).prop_map(|(k, v)| ShardOp::Write(k, v)),
        (0usize..64).prop_map(ShardOp::Release),
    ]
}

proptest! {
    /// Cross-shard `DataRef` ownership transfer (DESIGN.md §7): random
    /// traffic across 2–4 shard arenas, where handles allocated under
    /// one home are retained, rewritten and released under others — the
    /// slab-level shape of a payload handle crossing shards inside a
    /// message. At every step each arena's ledger outstanding count must
    /// equal the number of outstanding handles *tagged* with that arena
    /// (ownership follows the handle, not the current home), allocation
    /// must land in the home arena, CoW must stay in the written
    /// handle's arena, and the drain must end with every per-shard
    /// ledger balanced at zero — no leaks parked in a foreign arena.
    #[test]
    fn sharded_traffic_balances_per_shard_ledgers(
        shards in 2usize..=4,
        seed_ops in proptest::collection::vec(0u64..1000, 1..4),
        ops in proptest::collection::vec(shard_op_strategy(4), 1..300),
    ) {
        let mut slab = DataSlab::sharded(shards);
        let mut handles: Vec<DataRef> = Vec::new();
        let mut home = 0;
        for (i, tag) in seed_ops.iter().enumerate() {
            home = i % shards;
            slab.set_home(home);
            let r = slab.alloc(tagged(*tag));
            prop_assert_eq!(r.arena(), home, "allocation must land in the home arena");
            handles.push(r);
        }
        let check = |slab: &DataSlab, handles: &[DataRef]| -> Result<(), TestCaseError> {
            let mut per_arena = vec![0u64; shards];
            for r in handles {
                per_arena[r.arena()] += 1;
            }
            for (s, &expect) in per_arena.iter().enumerate() {
                prop_assert_eq!(
                    slab.ledger(s).outstanding(), expect,
                    "arena {} ledger diverged from its tagged handles", s
                );
            }
            let total: u64 = (0..shards).map(|s| slab.ledger(s).outstanding()).sum();
            prop_assert_eq!(total as usize, slab.total_refs(), "ledger sum vs refcounts");
            Ok(())
        };
        check(&slab, &handles)?;
        for op in ops {
            match op {
                ShardOp::SetHome(s) => {
                    home = s % shards;
                    slab.set_home(home);
                }
                ShardOp::Alloc(tag) => {
                    let r = slab.alloc(tagged(tag));
                    prop_assert_eq!(r.arena(), home, "allocation must land in the home arena");
                    handles.push(r);
                }
                ShardOp::Retain(k) if !handles.is_empty() => {
                    let r = handles[k % handles.len()];
                    handles.push(slab.retain(r));
                }
                ShardOp::Write(k, v) if !handles.is_empty() => {
                    let idx = k % handles.len();
                    let r = handles[idx];
                    let own = slab.make_mut(r);
                    prop_assert_eq!(own.arena(), r.arena(), "CoW must stay in its arena");
                    slab.get_mut(own).set_word(0, v);
                    handles[idx] = own;
                }
                ShardOp::Release(k) if !handles.is_empty() => {
                    let r = handles.remove(k % handles.len());
                    slab.release(r);
                }
                _ => {}
            }
            check(&slab, &handles)?;
        }
        // Drain: every handle releases cleanly against its own arena and
        // every per-shard ledger balances to zero.
        while let Some(r) = handles.pop() {
            slab.release(r);
        }
        for s in 0..shards {
            prop_assert_eq!(slab.ledger(s).outstanding(), 0, "arena {} leaked", s);
        }
        prop_assert_eq!(slab.live(), 0);
        prop_assert_eq!(slab.total_refs(), 0);
    }
}

#[test]
#[should_panic(expected = "double release")]
fn double_release_of_live_alias_panics_past_zero() {
    let mut slab = DataSlab::new();
    let r = slab.alloc(tagged(1));
    let alias = slab.retain(r);
    slab.release(r);
    slab.release(alias); // last handle: slot freed
    slab.release(alias); // past zero
}

#[test]
#[should_panic(expected = "get_mut of aliased DataRef")]
fn get_mut_of_shared_slot_panics() {
    let mut slab = DataSlab::new();
    let r = slab.alloc(tagged(1));
    let _alias = slab.retain(r);
    let _ = slab.get_mut(r);
}
