//! # lacc — the Locality-Aware Adaptive Cache Coherence protocol, end to end
//!
//! Facade crate re-exporting the whole workspace: the protocol
//! ([`lacc_core`]), the multicore simulator ([`lacc_sim`]), the Table-2
//! workload suite ([`lacc_workloads`]), the substrates
//! ([`lacc_cache`], [`lacc_network`], [`lacc_dram`], [`lacc_energy`]) and
//! the experiment harness ([`lacc_experiments`]).
//!
//! This crate also hosts the repository-level `examples/` and `tests/`
//! directories.
//!
//! # Quickstart
//!
//! ```
//! use lacc::prelude::*;
//!
//! // Run the streamcluster stand-in on a small machine at two PCTs and
//! // compare energy: the adaptive protocol (PCT = 4) wins.
//! let run = |pct| {
//!     let cfg = SystemConfig::small_for_tests(8).with_pct(pct);
//!     let workload = Benchmark::Streamcluster.build(8, 0.05);
//!     Simulator::new(cfg, workload).unwrap().run()
//! };
//! let baseline = run(1);
//! let adaptive = run(4);
//! assert!(adaptive.energy.total() < baseline.energy.total());
//! ```

pub use lacc_cache as cache;
pub use lacc_core as core;
pub use lacc_dram as dram;
pub use lacc_energy as energy;
pub use lacc_experiments as experiments;
pub use lacc_model as model;
pub use lacc_network as network;
pub use lacc_sim as sim;
pub use lacc_workloads as workloads;

/// The names most programs need, in one import.
pub mod prelude {
    pub use lacc_core::classifier::{RemovalReason, RequestHints, SharerMode};
    pub use lacc_core::home::{AccessKind, DirectoryEntry, Grant, HomeRequest};
    pub use lacc_core::rnuca::RegionClass;
    pub use lacc_core::DirectoryKind;
    pub use lacc_model::config::{ClassifierConfig, MechanismKind, TrackingKind};
    pub use lacc_model::{Addr, CoreId, Error, LineAddr, MissClass, SystemConfig, TraceError};
    pub use lacc_sim::ltf::{self, LtfHeader, LtfSummary, LtfTrace, SharedBuf};
    pub use lacc_sim::trace::default_instr_base;
    pub use lacc_sim::{
        RegionDecl, SimOptions, SimReport, Simulator, TraceOp, TraceSource, VecTrace, Workload,
    };
    pub use lacc_workloads::{Benchmark, Phases, Region};
}
