//! Workspace-health smoke test.
//!
//! Exercises the facade's `prelude` exactly as downstream code would:
//! every name used here comes through `lacc::prelude`, so a refactor that
//! breaks a re-export (or the Table-1 configuration, or the basic
//! simulate-a-workload loop) fails this test before anything subtler does.

use lacc::prelude::*;

#[test]
fn isca13_64core_config_validates() {
    let cfg = SystemConfig::isca13_64core();
    cfg.validate().expect("the paper's Table-1 configuration must validate");
    assert_eq!(cfg.num_cores, 64);
}

#[test]
fn two_core_simulator_round_trip() {
    // Core 0 writes a shared line, core 1 reads it back: the smallest
    // workload that crosses the directory. Hand-built through the prelude
    // types only.
    let line = LineAddr::new(64);
    let t0 = VecTrace::new(vec![
        TraceOp::Store { addr: line.base(), value: 0xF00D },
        TraceOp::Barrier { id: 1 },
    ]);
    let t1 = VecTrace::new(vec![TraceOp::Barrier { id: 1 }, TraceOp::Load { addr: line.base() }]);
    let workload = Workload {
        name: "smoke".into(),
        traces: vec![Box::new(t0), Box::new(t1)],
        regions: vec![RegionDecl { first_line: line, lines: 1, class: RegionClass::Shared }],
        instr_lines: 1,
        instr_base: default_instr_base(),
    };
    let cfg = SystemConfig::small_for_tests(2);
    cfg.validate().expect("small test configuration must validate");
    let report: SimReport = Simulator::new(cfg, workload).expect("valid config").run();
    assert_eq!(report.monitor.violations, 0, "coherence violated in a 2-op workload");
    assert!(report.completion_time > 0);
    assert!(report.l1d.total_accesses() >= 2, "both cores touch the line");
}
