//! Sweep the Private Caching Threshold on one benchmark and watch the
//! §5.1 trade-off: line moves convert to word accesses, energy falls,
//! then over-demotion sets in.
//!
//! ```sh
//! cargo run --release --example pct_sweep
//! ```

use lacc::prelude::*;

fn main() {
    let bench = std::env::args()
        .nth(1)
        .and_then(|n| Benchmark::by_name(&n))
        .unwrap_or(Benchmark::Streamcluster);
    let cores = 16;
    println!("PCT sweep on {} ({} cores, scale 0.2)\n", bench.name(), cores);
    println!(
        "{:>4} {:>12} {:>12} {:>9} {:>11} {:>11} {:>10}",
        "PCT", "time(cyc)", "energy(pJ)", "miss%", "line-grants", "word-accs", "demotions"
    );

    let mut base: Option<(f64, f64)> = None;
    for pct in [1u32, 2, 3, 4, 6, 8, 12] {
        let mut cfg = SystemConfig::small_for_tests(cores).with_pct(pct);
        // A bit more realistic cache sizing than the unit-test config.
        cfg.l1d = lacc::model::CacheConfig::new(8 * 1024, 4, 1);
        cfg.l2 = lacc::model::CacheConfig::new(64 * 1024, 8, 7);
        let w = bench.build(cores, 0.2);
        let r = Simulator::new(cfg, w).expect("valid config").run();
        let (t, e) = (r.completion_time as f64, r.energy.total());
        let (bt, be) = *base.get_or_insert((t, e));
        println!(
            "{:>4} {:>9} ({:.2}) {:>9.0} ({:.2}) {:>8.2} {:>11} {:>11} {:>10}",
            pct,
            r.completion_time,
            t / bt,
            e,
            e / be,
            r.l1d_miss_rate_pct(),
            r.protocol.line_grants,
            r.protocol.word_reads + r.protocol.word_writes,
            r.protocol.demotions
        );
    }
    println!("\n(paper: the sweet spot sits at PCT=4 — Figure 11)");
}
