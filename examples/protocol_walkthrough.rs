//! A guided walk through the protocol's state machine (Figure 4) using the
//! pure `lacc-core` API — no simulator, every step printed.
//!
//! ```sh
//! cargo run --example protocol_walkthrough
//! ```

use lacc::prelude::*;

fn main() {
    // A directory entry for one cache line on an 8-core machine with the
    // paper's defaults (PCT = 4, Limited_3, RAT levels {4, 16}).
    let mut entry =
        DirectoryEntry::new(DirectoryKind::ackwise4(), &ClassifierConfig::isca13_default(), 8);
    let reader = CoreId::new(1);
    let writer = CoreId::new(2);
    let hints = RequestHints { set_min_last_access: 0, set_has_invalid: true };
    let read = |core| HomeRequest { core, kind: AccessKind::Read, hints, instruction: false };
    let write = |core| HomeRequest { core, kind: AccessKind::Write, hints, instruction: false };

    println!("== 1. Cores start as private sharers (Figure 4: Initial) ==");
    let d = entry.begin_request(&read(reader), 0);
    println!("core1 read  -> {:?} (a whole line is granted)", d.grant);
    entry.complete_grant(reader, d.grant);

    println!("\n== 2. A writer invalidates; utilization 1 < PCT=4 demotes ==");
    let d = entry.begin_request(&write(writer), 10);
    println!("core2 write -> {:?}, invalidating {:?}", d.grant, d.invalidate);
    let mode = entry.sharer_response(reader, 1, RemovalReason::Invalidation);
    println!("core1 inv-ack with utilization 1 -> demoted to {mode:?}");
    entry.complete_grant(writer, d.grant);

    println!("\n== 3. Remote sharer: misses served as words at the shared L2 ==");
    for i in 1..=3 {
        let d = entry.begin_request(&read(reader), 20 + i);
        println!("core1 read #{i} -> {:?} (remote utilization builds)", d.grant);
        if let Some(owner) = d.fetch_from_owner {
            // core2 holds an M copy: synchronous write-back, owner keeps S.
            println!("        (synchronous write-back from {owner})");
            entry.owner_downgraded(owner);
        }
        entry.complete_grant(reader, d.grant);
    }

    println!("\n== 4. The PCT-th access promotes back to private (Figure 4) ==");
    let d = entry.begin_request(&read(reader), 30);
    println!("core1 read #4 -> {:?} (promoted: {})", d.grant, d.outcome.promoted);
    entry.complete_grant(reader, d.grant);

    println!("\n== 5. Eviction with good utilization stays private ==");
    let mode = entry.sharer_response(reader, 6, RemovalReason::Eviction);
    println!("core1 evicts with utilization 6 >= PCT -> stays {mode:?}");

    println!("\n== 6. Storage cost of all this (Section 3.6) ==");
    let r = lacc::core::overheads::storage_report(&SystemConfig::isca13_64core());
    println!(
        "Limited-3 classifier: {} bits/entry = {} KB/core ({}% over baseline)",
        r.classifier_bits_per_entry,
        r.classifier_kb,
        (100.0 * r.overhead_vs_baseline).round()
    );
}
