//! Quickstart: run one benchmark on the Table-1 machine and print the
//! paper's metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lacc::prelude::*;

fn main() {
    // The full 64-core Table-1 machine: ACKwise_4, Limited_3 classifier,
    // PCT = 4, 8x8 mesh, 8 memory controllers.
    let cfg = SystemConfig::isca13_64core();

    // A scaled-down streamcluster stand-in (the paper's best case for
    // converting sharing misses into word misses).
    let workload = Benchmark::Streamcluster.build(cfg.num_cores, 0.25);

    let report = Simulator::new(cfg, workload).expect("valid configuration").run();

    println!("== {} on the ISCA-13 machine ==", report.workload);
    println!("completion time : {} cycles", report.completion_time);
    println!("dynamic energy  : {:.1} nJ", report.total_energy() / 1000.0);
    println!("L1-D miss rate  : {:.2}%", report.l1d_miss_rate_pct());
    println!("instructions    : {}", report.instructions);
    println!();
    println!("completion-time breakdown: {}", report.breakdown);
    println!("energy breakdown        : {}", report.energy);
    println!();
    println!(
        "protocol: {} line grants, {} word reads, {} word writes, {} promotions, {} demotions",
        report.protocol.line_grants,
        report.protocol.word_reads,
        report.protocol.word_writes,
        report.protocol.promotions,
        report.protocol.demotions
    );
    println!(
        "coherence monitor: {} reads checked, {} violations",
        report.monitor.reads_checked, report.monitor.violations
    );
}
