//! Author a custom workload with the pattern library and run it: a
//! four-phase mix showing how each pattern lands in the miss-class
//! taxonomy of Figure 10.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use lacc::prelude::*;

fn main() {
    let cores = 8;
    let mut p = Phases::new(cores, 0xfeed);

    // Phase 1: every core streams a private array larger than its L1
    // (capacity misses; utilization 8 per line).
    let streams: Vec<Region> = (0..cores).map(|c| Region::private(c, 0, 1024)).collect();
    p.private_stream(&streams, 2, 1, 0.2);
    p.barrier();

    // Phase 2: read-mostly sharing with a rotating writer every 5th block
    // (sharing misses; short residencies -> demotions -> word misses).
    let table = Region::shared(0, 256);
    p.shared_read_write(&table, 400, 2, 5);
    p.barrier();

    // Phase 3: lock-protected migratory record.
    let record = Region::shared(512, 4);
    p.migratory(&record, 0, 20, 2);
    p.barrier();

    // Phase 4: private hot set (pure L1 hits).
    let hot: Vec<Region> = (0..cores).map(|c| Region::private(c, 2048, 64)).collect();
    p.private_hot(&hot, 2000, 0.3);

    let mut decls = vec![table.decl_shared(), record.decl_shared()];
    for (c, r) in streams.iter().enumerate() {
        decls.push(r.decl_private(c));
    }
    for (c, r) in hot.iter().enumerate() {
        decls.push(r.decl_private(c));
    }
    let workload = p.finish("custom-mix", decls, 16);

    let cfg = SystemConfig::small_for_tests(cores).with_pct(4);
    let report = Simulator::new(cfg, workload).expect("valid config").run();

    println!("== custom-mix on {cores} cores, PCT=4 ==");
    println!(
        "completion: {} cycles   energy: {:.0} pJ",
        report.completion_time,
        report.total_energy()
    );
    println!("L1-D miss rate: {:.2}%", report.l1d_miss_rate_pct());
    println!("\nmiss classes (Figure 10 taxonomy):");
    for c in MissClass::ALL {
        println!("  {:<9} {:>8}", c.label(), report.l1d.of(c));
    }
    println!("\neviction utilization histogram (Figure 2 bins):");
    for (label, count) in
        ["1", "2,3", "4,5", "6,7", ">=8"].iter().zip(report.evict_histogram.bins())
    {
        println!("  util {:<4} {:>8}", label, count);
    }
    println!(
        "\ncoherence: {} reads checked, {} violations",
        report.monitor.reads_checked, report.monitor.violations
    );
}
