//! The paper's qualitative claims, asserted at test scale. These are the
//! repository's "does the reproduction actually reproduce?" gates; the
//! full-scale numbers live in EXPERIMENTS.md.

use lacc::prelude::*;

fn cfg(cores: usize, pct: u32) -> SystemConfig {
    let mut c = SystemConfig::small_for_tests(cores).with_pct(pct);
    c.l1d = lacc::model::CacheConfig::new(8 * 1024, 4, 1);
    c.l2 = lacc::model::CacheConfig::new(64 * 1024, 8, 7);
    c
}

fn run(b: Benchmark, cores: usize, pct: u32, scale: f64) -> SimReport {
    Simulator::new(cfg(cores, pct), b.build(cores, scale)).unwrap().run()
}

#[test]
fn anchor_adaptive_reduces_energy_on_sharing_benchmarks() {
    // §5.1.1: sharing misses convert into cheaper word misses.
    for b in [Benchmark::Streamcluster, Benchmark::DijkstraSs] {
        let base = run(b, 16, 1, 0.1);
        let adaptive = run(b, 16, 4, 0.1);
        assert!(
            adaptive.energy.total() < base.energy.total(),
            "{}: adaptive {:.0} pJ vs baseline {:.0} pJ",
            b.name(),
            adaptive.energy.total(),
            base.energy.total()
        );
    }
}

#[test]
fn anchor_invalidations_have_low_utilization() {
    // §2.2 / Figure 1: most invalidated lines in streamcluster show
    // utilization below 4 (the paper reports ~80%).
    let r = run(Benchmark::Streamcluster, 16, 1, 0.1);
    assert!(r.inval_histogram.total() > 0, "invalidations must occur");
    assert!(
        r.inval_histogram.below(4) > 0.5,
        "low-utilization invalidations: {:.0}%",
        100.0 * r.inval_histogram.below(4)
    );
}

#[test]
fn anchor_one_way_is_worse() {
    // §5.4 / Figure 14: removing remote→private transitions hurts.
    // dijkstra-ss is one of the paper's two outliers: its write-heavy
    // relaxation convoy demotes every reader, and the subsequent
    // full-line re-read phase only performs well if cores can promote
    // back (Adapt2-way). Adapt1-way leaves them remote forever.
    let b = Benchmark::DijkstraSs;
    let two = run(b, 16, 4, 0.2);
    let mut c = cfg(16, 4);
    c.classifier.one_way = true;
    let one = Simulator::new(c, b.build(16, 0.2)).unwrap().run();
    assert!(
        one.completion_time as f64 >= 1.02 * two.completion_time as f64,
        "1-way {} vs 2-way {}",
        one.completion_time,
        two.completion_time
    );
    assert!(
        one.protocol.word_reads > two.protocol.word_reads,
        "1-way must be stuck in remote mode"
    );
}

#[test]
fn anchor_ackwise_tracks_full_map() {
    // §5 preamble: ACKwise4 within ~1% of full-map. At test scale allow 5%.
    let b = Benchmark::Barnes;
    let mut fm = cfg(16, 1);
    fm.directory = DirectoryKind::FullMap;
    let full = Simulator::new(fm, b.build(16, 0.1)).unwrap().run();
    let ack = run(b, 16, 1, 0.1);
    let ratio = ack.completion_time as f64 / full.completion_time as f64;
    assert!((0.95..=1.05).contains(&ratio), "ACKwise/full-map completion ratio {ratio:.3}");
}

#[test]
fn anchor_word_misses_do_not_wait_on_sharers() {
    // §5.1.2: "a word miss does not contribute to the L2 cache to sharers
    // latency" — remote accesses never trigger invalidation rounds on
    // read-only data.
    let r = run(Benchmark::Raytrace, 16, 2, 0.1);
    assert!(r.protocol.word_reads > 0);
    assert_eq!(r.protocol.invalidations_sent, 0, "read-only scene data must never invalidate");
}

#[test]
fn anchor_storage_overheads_match_section_3_6() {
    let r = lacc::core::overheads::storage_report(&SystemConfig::isca13_64core());
    assert_eq!(r.classifier_bits_per_entry, 36);
    assert_eq!(r.classifier_kb, 18.0);
    assert_eq!(r.directory_kb, 12.0);
    assert_eq!(r.full_map_kb, 32.0);
    assert!(r.classifier_kb + r.directory_kb < r.full_map_kb);
}

#[test]
fn anchor_limited3_close_to_complete() {
    // §5.3 / Figure 13: Limited_3 within a few percent of Complete.
    let b = Benchmark::Streamcluster;
    let mut complete_cfg = cfg(16, 4);
    complete_cfg.classifier.tracking = TrackingKind::Complete;
    let complete = Simulator::new(complete_cfg, b.build(16, 0.1)).unwrap().run();
    let limited3 = run(b, 16, 4, 0.1); // default Limited_3
    let ratio = limited3.completion_time as f64 / complete.completion_time as f64;
    assert!(
        (0.8..=1.15).contains(&ratio),
        "Limited_3/Complete completion ratio {ratio:.3} out of band"
    );
}
