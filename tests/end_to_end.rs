//! Repository-level integration: workload generation → placement →
//! protocol → simulator → report, across protocol variants.

use lacc::prelude::*;

fn small_cfg(cores: usize) -> SystemConfig {
    SystemConfig::small_for_tests(cores)
}

#[test]
fn full_stack_all_benchmarks_tiny() {
    for b in Benchmark::ALL {
        let w = b.build(4, 0.02);
        let r = Simulator::new(small_cfg(4), w).unwrap().run();
        assert_eq!(r.monitor.violations, 0, "{}", b.name());
        assert!(r.l1d.total_accesses() > 0, "{}", b.name());
        assert!(r.energy.total() > 0.0, "{}", b.name());
    }
}

#[test]
fn protocol_variant_matrix_is_coherent() {
    // Every classifier x directory combination completes coherently on a
    // sharing-heavy benchmark.
    let trackings =
        [TrackingKind::Complete, TrackingKind::Limited { k: 1 }, TrackingKind::Limited { k: 3 }];
    let mechanisms =
        [MechanismKind::Timestamp, MechanismKind::RatLevels { levels: 2, rat_max: 16 }];
    let dirs = [DirectoryKind::FullMap, DirectoryKind::AckWise { pointers: 2 }];
    for tracking in trackings {
        for mechanism in mechanisms {
            for dir in dirs {
                for one_way in [false, true] {
                    let mut cfg = small_cfg(8);
                    cfg.classifier =
                        ClassifierConfig { pct: 4, tracking, mechanism, one_way, shortcut: false };
                    cfg.directory = dir;
                    let w = Benchmark::Streamcluster.build(8, 0.05);
                    let r = Simulator::new(cfg, w).unwrap().run();
                    assert_eq!(
                        r.monitor.violations, 0,
                        "violation under {tracking:?}/{mechanism:?}/{dir:?}/one_way={one_way}"
                    );
                }
            }
        }
    }
}

#[test]
fn word_accesses_replace_line_grants_as_pct_rises() {
    let run = |pct| {
        let w = Benchmark::Concomp.build(8, 0.05);
        Simulator::new(small_cfg(8).with_pct(pct), w).unwrap().run()
    };
    let base = run(1);
    let adaptive = run(4);
    assert_eq!(base.protocol.word_reads + base.protocol.word_writes, 0);
    assert!(adaptive.protocol.word_reads + adaptive.protocol.word_writes > 0);
    assert!(
        adaptive.protocol.line_grants < base.protocol.line_grants,
        "line movement must shrink: {} -> {}",
        base.protocol.line_grants,
        adaptive.protocol.line_grants
    );
    // Fewer line transfers ⇒ fewer network flits overall.
    assert!(adaptive.net.link_flits < base.net.link_flits);
}

#[test]
fn report_invariants_hold() {
    let w = Benchmark::Tsp.build(8, 0.05);
    let r = Simulator::new(small_cfg(8), w).unwrap().run();
    // Completion time equals the slowest core, and no core exceeds it.
    let max_core_total: u64 = r.per_core.iter().map(|b| b.total()).max().unwrap();
    assert!(r.completion_time >= max_core_total / 2, "completion vs core totals");
    for b in &r.per_core {
        assert!(b.total() <= r.completion_time + 1, "{b:?} exceeds completion");
    }
    // Energy ledger and breakdown agree.
    let e = lacc::energy::EnergyParams::isca13_11nm().charge(&r.energy_counts);
    assert!((e.total() - r.energy.total()).abs() < 1e-6);
    // Network flit ledger matches the mesh's own counters.
    assert_eq!(r.energy_counts.router_flits, r.net.router_flits);
    assert_eq!(r.energy_counts.link_flits, r.net.link_flits);
}

#[test]
fn rnuca_private_data_stays_local() {
    // A purely private workload on PCT=1: every miss is served by the
    // core's own L2 slice (R-NUCA private placement), so the mesh carries
    // only DRAM traffic.
    let cores = 4;
    let mut p = Phases::new(cores, 9);
    let regions: Vec<Region> = (0..cores).map(|c| Region::private(c, 0, 32)).collect();
    p.private_stream(&regions, 2, 1, 0.2);
    let mut decls = vec![];
    for (c, r) in regions.iter().enumerate() {
        decls.push(r.decl_private(c));
    }
    let w = p.finish("local", decls, 0);
    let r = Simulator::new(small_cfg(cores).with_pct(1), w).unwrap().run();
    assert_eq!(r.monitor.violations, 0);
    // All L1<->L2 messages were tile-local; only DRAM legs used the mesh.
    // DRAM legs: fetch (1 flit) + data (9 flits) per cold miss at most,
    // plus write-backs; request/grant flits would add ~10 more per miss.
    let misses = r.l1d.total_misses();
    assert!(
        r.net.unicasts <= 3 * misses,
        "unexpected non-local traffic: {} unicasts for {} misses",
        r.net.unicasts,
        misses
    );
}
