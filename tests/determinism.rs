//! Bit-for-bit determinism across repeated runs: same seed, same machine,
//! same report — the property every experiment in EXPERIMENTS.md relies on.

use lacc::prelude::*;

fn fingerprint(r: &SimReport) -> String {
    format!(
        "{}|{:?}|{:?}|{:?}|{}|{}|{}|{:?}|{:?}",
        r.completion_time,
        r.breakdown,
        r.l1d,
        r.l1i,
        r.energy.total(),
        r.net.link_flits,
        r.dram.accesses,
        r.inval_histogram.bins(),
        r.evict_histogram.bins(),
    )
}

#[test]
fn repeated_runs_are_identical() {
    for b in [Benchmark::Streamcluster, Benchmark::Radix, Benchmark::Tsp] {
        let run = || {
            let w = b.build(8, 0.05);
            Simulator::new(SystemConfig::small_for_tests(8), w).unwrap().run()
        };
        assert_eq!(fingerprint(&run()), fingerprint(&run()), "{}", b.name());
    }
}

#[test]
fn different_seeded_benchmarks_differ() {
    // Sanity check that the fingerprint actually discriminates.
    let run = |b: Benchmark| {
        let w = b.build(8, 0.05);
        Simulator::new(SystemConfig::small_for_tests(8), w).unwrap().run()
    };
    assert_ne!(fingerprint(&run(Benchmark::Streamcluster)), fingerprint(&run(Benchmark::Canneal)));
}

#[test]
fn scale_changes_only_length_not_validity() {
    for scale in [0.02, 0.08] {
        let w = Benchmark::Barnes.build(8, scale);
        let r = Simulator::new(SystemConfig::small_for_tests(8), w).unwrap().run();
        assert_eq!(r.monitor.violations, 0, "scale {scale}");
    }
}
