//! Bit-for-bit determinism across repeated runs: same seed, same machine,
//! same report — the property every experiment in EXPERIMENTS.md relies on.

use lacc::prelude::*;

fn fingerprint(r: &SimReport) -> String {
    format!(
        "{}|{:?}|{:?}|{:?}|{}|{}|{}|{:?}|{:?}",
        r.completion_time,
        r.breakdown,
        r.l1d,
        r.l1i,
        r.energy.total(),
        r.net.link_flits,
        r.dram.accesses,
        r.inval_histogram.bins(),
        r.evict_histogram.bins(),
    )
}

#[test]
fn repeated_runs_are_identical() {
    for b in [Benchmark::Streamcluster, Benchmark::Radix, Benchmark::Tsp] {
        let run = || {
            let w = b.build(8, 0.05);
            Simulator::new(SystemConfig::small_for_tests(8), w).unwrap().run()
        };
        assert_eq!(fingerprint(&run()), fingerprint(&run()), "{}", b.name());
    }
}

#[test]
fn different_seeded_benchmarks_differ() {
    // Sanity check that the fingerprint actually discriminates.
    let run = |b: Benchmark| {
        let w = b.build(8, 0.05);
        Simulator::new(SystemConfig::small_for_tests(8), w).unwrap().run()
    };
    assert_ne!(fingerprint(&run(Benchmark::Streamcluster)), fingerprint(&run(Benchmark::Canneal)));
}

#[test]
fn scale_changes_only_length_not_validity() {
    for scale in [0.02, 0.08] {
        let w = Benchmark::Barnes.build(8, scale);
        let r = Simulator::new(SystemConfig::small_for_tests(8), w).unwrap().run();
        assert_eq!(r.monitor.violations, 0, "scale {scale}");
    }
}

#[test]
fn sharded_runs_reproduce_the_serial_oracle_for_every_suite_workload() {
    // The sharded engine's whole contract (DESIGN.md §7): any `--shards N`
    // must reproduce the serial engine's report byte-for-byte — including
    // the order-sensitive slab ledger, which the full Debug fingerprint
    // covers. Every Table-2 workload, shards ∈ {2, 4}, in *both* commit
    // modes (inline run-serving and concurrent harvest crews), vs the
    // serial oracle at shards = 1.
    let cores = 4;
    let scale = 0.02;
    for b in Benchmark::ALL {
        let run = |shards: usize, concurrent_commit: bool| {
            let w = b.build(cores, scale);
            let opts = SimOptions { shards, concurrent_commit, ..SimOptions::default() };
            Simulator::with_options(SystemConfig::small_for_tests(cores), w, opts).unwrap().run()
        };
        let oracle = format!("{:?}", run(1, false));
        for shards in [2, 4] {
            for concurrent in [false, true] {
                assert_eq!(
                    format!("{:?}", run(shards, concurrent)),
                    oracle,
                    "{} shards={shards} concurrent={concurrent}",
                    b.name()
                );
            }
        }
    }
}

#[test]
fn ltf_replay_is_report_identical_for_every_suite_workload() {
    // Determinism must survive the trip through the on-disk trace format:
    // for each benchmark, simulating the generator's workload and
    // simulating its .ltf dump — in *both* stream encodings, through both
    // the serial and the sharded engine — must produce byte-identical
    // reports.
    let cores = 4;
    let scale = 0.02;
    let dir = std::env::temp_dir();
    for b in Benchmark::ALL {
        let run = |w: Workload, shards: usize| {
            let opts = SimOptions { shards, ..SimOptions::default() };
            Simulator::with_options(SystemConfig::small_for_tests(cores), w, opts).unwrap().run()
        };
        let direct = run(b.build(cores, scale), 1);

        let v1 = dir.join(format!("lacc_replay_eq_{}_v1.ltf", b.name()));
        let v2 = dir.join(format!("lacc_replay_eq_{}_v2.ltf", b.name()));
        b.build(cores, scale).dump_ltf(&v1).unwrap();
        b.build(cores, scale).dump_ltf_v2(&v2).unwrap();
        for (path, encoding) in [(&v1, "v1"), (&v2, "v2")] {
            for shards in [1, 2] {
                let replay = run(ltf::read_workload(path).unwrap(), shards);
                let tag = format!("{} {encoding} shards={shards}", b.name());
                assert_eq!(direct.workload, replay.workload, "{tag}");
                assert_eq!(fingerprint(&direct), fingerprint(&replay), "{tag}");
                assert_eq!(replay.monitor.violations, 0, "{tag}");
            }
        }
        std::fs::remove_file(&v1).ok();
        std::fs::remove_file(&v2).ok();
    }
}
