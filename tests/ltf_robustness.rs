//! Malformed-input hardening for the LTF decoder: every corruption returns
//! a typed `TraceError` — never a panic, never a garbage workload.
//!
//! Each case corrupts a real encoder output (or hand-assembles a stream
//! with the public varint primitives) and asserts on the exact error
//! variant, through both the in-memory and the file-backed entry points.

use lacc::prelude::ltf::varint;
use lacc::prelude::*;

/// A small but non-trivial valid image: two cores, ops of every kind,
/// region declarations of every class.
fn valid_bytes() -> Vec<u8> {
    ltf::workload_to_ltf_bytes(victim_workload()).unwrap()
}

/// The same workload in the delta-compressed v2 encoding.
fn valid_bytes_v2() -> Vec<u8> {
    ltf::workload_to_ltf_bytes_v2(victim_workload()).unwrap()
}

fn victim_workload() -> Workload {
    Workload {
        name: "victim".into(),
        traces: vec![
            Box::new(VecTrace::new(vec![
                TraceOp::Compute(3),
                TraceOp::Store { addr: Addr::new(0x1040), value: 99 },
                TraceOp::Load { addr: Addr::new(0x1040) },
                TraceOp::Barrier { id: 0 },
            ])),
            Box::new(VecTrace::new(vec![TraceOp::Acquire { id: 7 }, TraceOp::Release { id: 7 }])),
        ],
        regions: vec![
            RegionDecl { first_line: LineAddr::new(0x41), lines: 8, class: RegionClass::Shared },
            RegionDecl {
                first_line: LineAddr::new(0x80),
                lines: 4,
                class: RegionClass::PrivateTo(CoreId::new(1)),
            },
        ],
        instr_lines: 16,
        instr_base: default_instr_base(),
    }
}

/// Decodes through the file-backed streaming path, cleaning up after
/// itself; used to prove path and bytes APIs fail identically.
fn open_as_file(bytes: &[u8], tag: &str) -> Result<Workload, TraceError> {
    let path = std::env::temp_dir().join(format!("lacc_ltf_robustness_{tag}.ltf"));
    std::fs::write(&path, bytes).unwrap();
    let result = ltf::read_workload(&path);
    std::fs::remove_file(&path).ok();
    result
}

fn v(value: u64) -> Vec<u8> {
    let mut out = Vec::new();
    varint::encode(value, &mut out);
    out
}

#[test]
fn valid_image_decodes_everywhere() {
    let bytes = valid_bytes();
    let (header, ops) = ltf::read_workload_bytes(&bytes).unwrap();
    assert_eq!(header.name, "victim");
    assert_eq!(ops[0].len(), 4);
    assert_eq!(ops[1].len(), 2);
    let w = open_as_file(&bytes, "valid").unwrap();
    assert_eq!(w.active_cores(), 2);
}

#[test]
fn truncated_header_is_typed() {
    let bytes = valid_bytes();
    // Inside the magic.
    let e = ltf::read_workload_bytes(&bytes[..5]).unwrap_err();
    assert_eq!(e, TraceError::Truncated { what: "magic" });
    assert_eq!(open_as_file(&bytes[..5], "magic").unwrap_err(), e);
    // Just past the magic: the version varint is missing.
    let e = ltf::read_workload_bytes(&bytes[..8]).unwrap_err();
    assert_eq!(e, TraceError::Truncated { what: "version" });
    // Inside the name bytes (magic + version + flags + name length = 10).
    let e = ltf::read_workload_bytes(&bytes[..12]).unwrap_err();
    assert_eq!(e, TraceError::Truncated { what: "name" });
    // Inside the core offset table.
    let (_, offsets) = ltf::read_header_bytes(&bytes).unwrap();
    let table_end = offsets[0] as usize;
    let e = ltf::read_workload_bytes(&bytes[..table_end - 3]).unwrap_err();
    assert_eq!(e, TraceError::Truncated { what: "core offset table" });
}

#[test]
fn bad_magic_is_typed() {
    let mut bytes = valid_bytes();
    bytes[0] ^= 0xff;
    let e = ltf::read_workload_bytes(&bytes).unwrap_err();
    assert!(matches!(&e, TraceError::BadMagic { found } if found.len() == 8));
    assert_eq!(open_as_file(&bytes, "magic2").unwrap_err(), e);
    // A different trace-looking file is rejected the same way.
    let e = ltf::read_workload_bytes(b"GRAPHITE0123").unwrap_err();
    assert!(matches!(e, TraceError::BadMagic { .. }));
}

#[test]
fn unsupported_version_is_typed() {
    // Versions 1 and 2 are the format; anything else is rejected.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ltf::MAGIC);
    bytes.extend_from_slice(&v(ltf::VERSION_V2 + 97));
    let e = ltf::read_workload_bytes(&bytes).unwrap_err();
    assert_eq!(e, TraceError::UnsupportedVersion { found: 99 });
    assert_eq!(open_as_file(&bytes, "version").unwrap_err(), e);
}

#[test]
fn reserved_flags_are_rejected() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ltf::MAGIC);
    bytes.extend_from_slice(&v(ltf::VERSION));
    bytes.extend_from_slice(&v(1)); // flags must be zero
    assert!(matches!(ltf::read_workload_bytes(&bytes).unwrap_err(), TraceError::Corrupt { .. }));
}

#[test]
fn mid_op_eof_is_typed() {
    // One core, so shrinking the file cannot invalidate later offsets
    // before the decoder even reaches the streams.
    let w = Workload {
        name: "cut".into(),
        traces: vec![Box::new(VecTrace::new(vec![
            TraceOp::Store { addr: Addr::new(0x40), value: u64::MAX },
            TraceOp::Compute(1),
        ]))],
        regions: vec![],
        instr_lines: 0,
        instr_base: default_instr_base(),
    };
    let bytes = ltf::workload_to_ltf_bytes(w).unwrap();

    // Dropping the final end-of-stream marker truncates the stream.
    let e = ltf::read_workload_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
    assert_eq!(e, TraceError::Truncated { what: "opcode" });
    assert_eq!(open_as_file(&bytes[..bytes.len() - 1], "endmarker").unwrap_err(), e);

    // Cutting right after the first opcode byte leaves its operand dangling.
    let (_, offsets) = ltf::read_header_bytes(&bytes).unwrap();
    let first_op = offsets[0] as usize;
    let e = ltf::read_workload_bytes(&bytes[..first_op + 1]).unwrap_err();
    assert_eq!(e, TraceError::Truncated { what: "store address" });
    assert_eq!(open_as_file(&bytes[..first_op + 1], "midop").unwrap_err(), e);
}

#[test]
fn overlong_varint_is_typed() {
    // A version field of ten 0xff bytes claims more than 64 bits.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ltf::MAGIC);
    bytes.extend_from_slice(&[0xff; 10]);
    let e = ltf::read_workload_bytes(&bytes).unwrap_err();
    assert_eq!(e, TraceError::OverlongVarint { what: "version" });
    assert_eq!(open_as_file(&bytes, "overlong").unwrap_err(), e);

    // Same failure inside an op operand: store value of 11 continuations.
    let w = Workload {
        name: String::new(),
        traces: vec![Box::new(VecTrace::new(vec![TraceOp::Compute(1)]))],
        regions: vec![],
        instr_lines: 0,
        instr_base: default_instr_base(),
    };
    let valid = ltf::workload_to_ltf_bytes(w).unwrap();
    let (_, offsets) = ltf::read_header_bytes(&valid).unwrap();
    let mut bytes = valid[..offsets[0] as usize].to_vec();
    bytes.push(ltf::OP_COMPUTE);
    bytes.extend_from_slice(&[0x80; 11]);
    bytes.push(ltf::OP_END);
    let e = ltf::read_workload_bytes(&bytes).unwrap_err();
    assert_eq!(e, TraceError::OverlongVarint { what: "compute count" });
}

#[test]
fn unknown_opcode_is_typed() {
    let bytes = valid_bytes();
    let (_, offsets) = ltf::read_header_bytes(&bytes).unwrap();
    let mut bytes = bytes;
    bytes[offsets[0] as usize] = 0x7e;
    let e = ltf::read_workload_bytes(&bytes).unwrap_err();
    assert_eq!(e, TraceError::BadOpCode { code: 0x7e });
    assert_eq!(open_as_file(&bytes, "opcode").unwrap_err(), e);
}

#[test]
fn unknown_region_class_is_typed() {
    // Hand-assembled header: no cores, one region with an undefined tag.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ltf::MAGIC);
    bytes.extend_from_slice(&v(ltf::VERSION));
    bytes.extend_from_slice(&v(0)); // flags
    bytes.extend_from_slice(&v(0)); // name length
    bytes.extend_from_slice(&v(0)); // cores
    bytes.extend_from_slice(&v(0)); // instr_lines
    bytes.extend_from_slice(&v(0)); // instr_base
    bytes.extend_from_slice(&v(1)); // one region
    bytes.extend_from_slice(&v(0x41)); // first line
    bytes.extend_from_slice(&v(8)); // lines
    bytes.push(0xee); // undefined class tag
    let e = ltf::read_workload_bytes(&bytes).unwrap_err();
    assert_eq!(e, TraceError::BadRegionClass { tag: 0xee });
    assert_eq!(open_as_file(&bytes, "class").unwrap_err(), e);
}

#[test]
fn corrupt_counts_and_offsets_are_typed() {
    // Core count beyond the 16-bit architecture limit.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ltf::MAGIC);
    bytes.extend_from_slice(&v(ltf::VERSION));
    bytes.extend_from_slice(&v(0));
    bytes.extend_from_slice(&v(0));
    bytes.extend_from_slice(&v(ltf::MAX_CORES + 1));
    assert!(matches!(ltf::read_workload_bytes(&bytes).unwrap_err(), TraceError::Corrupt { .. }));

    // An offset pointing past end-of-file.
    let valid = valid_bytes();
    let (_, offsets) = ltf::read_header_bytes(&valid).unwrap();
    let table_at = offsets[0] as usize - 16; // two 8-byte entries precede the streams
    let mut bytes = valid.clone();
    bytes[table_at..table_at + 8].copy_from_slice(&(valid.len() as u64 + 100).to_le_bytes());
    let e = ltf::read_workload_bytes(&bytes).unwrap_err();
    assert!(matches!(e, TraceError::Corrupt { .. }));
    assert_eq!(open_as_file(&bytes, "offset").unwrap_err(), e);

    // An offset pointing back into the header.
    let mut bytes = valid.clone();
    bytes[table_at..table_at + 8].copy_from_slice(&0u64.to_le_bytes());
    assert!(matches!(ltf::read_workload_bytes(&bytes).unwrap_err(), TraceError::Corrupt { .. }));
}

#[test]
fn invalid_name_utf8_is_typed() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ltf::MAGIC);
    bytes.extend_from_slice(&v(ltf::VERSION));
    bytes.extend_from_slice(&v(0));
    bytes.extend_from_slice(&v(2)); // two name bytes...
    bytes.extend_from_slice(&[0xff, 0xfe]); // ...that are not UTF-8
    let e = ltf::read_workload_bytes(&bytes).unwrap_err();
    assert_eq!(e, TraceError::BadUtf8 { what: "name" });
}

#[test]
fn every_prefix_of_a_valid_file_errors_not_panics() {
    // The decoder is total: any truncation point yields Err, never a panic
    // and never a silently shortened success.
    let bytes = valid_bytes();
    for len in 0..bytes.len() {
        assert!(
            ltf::read_workload_bytes(&bytes[..len]).is_err(),
            "prefix of {len} bytes decoded successfully"
        );
    }
    assert!(ltf::read_workload_bytes(&bytes).is_ok());
}

// ---------------------------------------------------------------------
// Version 2: the delta-compressed stream encoding must be exactly as
// total as v1 — same sweep, same typed errors, byte layouts of its own.
// ---------------------------------------------------------------------

#[test]
fn v2_image_decodes_everywhere_and_matches_v1() {
    let bytes = valid_bytes_v2();
    let (header, ops) = ltf::read_workload_bytes(&bytes).unwrap();
    assert_eq!(header.version, ltf::VERSION_V2);
    assert_eq!(header.name, "victim");
    let w = open_as_file(&bytes, "valid_v2").unwrap();
    assert_eq!(w.active_cores(), 2);

    // Both encodings of the same workload decode to the same ops under
    // the same header (bar the version tag).
    let (header_v1, ops_v1) = ltf::read_workload_bytes(&valid_bytes()).unwrap();
    assert_eq!(ops, ops_v1);
    assert_eq!(header.regions, header_v1.regions);
}

#[test]
fn every_prefix_of_a_valid_v2_file_errors_not_panics() {
    let bytes = valid_bytes_v2();
    for len in 0..bytes.len() {
        assert!(
            ltf::read_workload_bytes(&bytes[..len]).is_err(),
            "v2 prefix of {len} bytes decoded successfully"
        );
    }
    assert!(ltf::read_workload_bytes(&bytes).is_ok());
}

#[test]
fn v2_undefined_tag_is_typed() {
    // Tags 0xF0..=0xFF are unassigned in v2.
    let bytes = valid_bytes_v2();
    let (_, offsets) = ltf::read_header_bytes(&bytes).unwrap();
    let mut bytes = bytes;
    bytes[offsets[0] as usize] = 0xf7;
    let e = ltf::read_workload_bytes(&bytes).unwrap_err();
    assert_eq!(e, TraceError::BadOpCode { code: 0xf7 });
    assert_eq!(open_as_file(&bytes, "v2_opcode").unwrap_err(), e);
}

#[test]
fn v2_corrupt_run_length_is_typed() {
    // A lone Compute(9) encodes as [OP2_COMPUTE, 9]; retagging it as a
    // run record makes the end marker parse as repeat = 0 — out of the
    // legal 2..=MAX_RUN range.
    let w = Workload {
        name: "run".into(),
        traces: vec![Box::new(VecTrace::new(vec![TraceOp::Compute(9)]))],
        regions: vec![],
        instr_lines: 0,
        instr_base: default_instr_base(),
    };
    let bytes = ltf::workload_to_ltf_bytes_v2(w).unwrap();
    let (_, offsets) = ltf::read_header_bytes(&bytes).unwrap();
    let mut bytes = bytes;
    assert_eq!(bytes[offsets[0] as usize], ltf::v2::OP2_COMPUTE);
    bytes[offsets[0] as usize] = ltf::v2::OP2_COMPUTE_RUN;
    let e = ltf::read_workload_bytes(&bytes).unwrap_err();
    assert_eq!(e, TraceError::Corrupt { what: "compute run length out of range" });
    assert_eq!(open_as_file(&bytes, "v2_run").unwrap_err(), e);
}

#[test]
fn v2_truncated_store_value_is_typed() {
    // A store's fixed eight value bytes are the file's tail once the end
    // marker is cut; shaving two bytes lands mid-value.
    let w = Workload {
        name: "cut2".into(),
        traces: vec![Box::new(VecTrace::new(vec![TraceOp::Store {
            addr: Addr::new(0x40),
            value: u64::MAX,
        }]))],
        regions: vec![],
        instr_lines: 0,
        instr_base: default_instr_base(),
    };
    let bytes = ltf::workload_to_ltf_bytes_v2(w).unwrap();
    let e = ltf::read_workload_bytes(&bytes[..bytes.len() - 2]).unwrap_err();
    assert_eq!(e, TraceError::Truncated { what: "store value" });
    assert_eq!(open_as_file(&bytes[..bytes.len() - 2], "v2_value").unwrap_err(), e);
}
