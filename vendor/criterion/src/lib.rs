//! Offline shim for the subset of the `criterion` 0.5 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the bench suites
//! link against this minimal harness instead. It mirrors criterion's
//! runtime contract:
//!
//! * under `cargo bench` (cargo passes `--bench` to the target) every
//!   `Bencher::iter` call is timed over warmup + measured samples and a
//!   `name  time: [median ns/iter]` line is printed;
//! * under `cargo test` (no `--bench` argument) each benchmark body runs
//!   its closure once, so benches are continuously smoke-tested without
//!   paying measurement time — the same behavior real criterion has.
//!
//! Statistical machinery (outlier analysis, HTML reports, comparisons) is
//! intentionally absent.
//!
//! Two lacc-specific extensions:
//!
//! * after a `cargo bench` run, every measured median is merged into
//!   `results/bench_summary.json` (one JSON array of
//!   `{"suite","name","median_ns"}` objects, keyed by the bench binary's
//!   name) so performance can be tracked across PRs;
//! * setting `LACC_BENCH_FAST=1` skips calibration and runs two one-shot
//!   samples per benchmark — a smoke mode for CI that still exercises
//!   every bench body and produces a well-formed summary (the timings are
//!   meaningless).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Medians measured during this process, drained by
/// [`write_bench_summary`].
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// An opaque barrier against the optimizer, same contract as
/// `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group. Recorded and echoed in
/// bench output; no derived rates are computed.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Invoked by `cargo bench`: measure and report.
    Bench,
    /// Invoked by `cargo test` (or directly): run each body once.
    Test,
}

fn detect_mode() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Bench
    } else {
        Mode::Test
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, mode: detect_mode() }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.mode, self.sample_size, None, &id.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion.mode, samples, self.throughput, &full, f);
        self
    }

    /// Groups report nothing extra on drop; `finish` exists for API parity.
    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` is where timing happens.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    /// Median duration of one iteration, filled in by `iter` in bench mode.
    result_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut body: F)
    where
        F: FnMut() -> O,
    {
        if self.mode == Mode::Test {
            black_box(body());
            return;
        }
        if std::env::var_os("LACC_BENCH_FAST").is_some() {
            // Smoke mode: two one-shot samples, no calibration. Times are
            // meaningless but the summary pipeline runs end to end.
            let mut per_iter: Vec<f64> = (0..2)
                .map(|_| {
                    let t = Instant::now();
                    black_box(body());
                    t.elapsed().as_nanos() as f64
                })
                .collect();
            per_iter.sort_by(|a, b| a.total_cmp(b));
            self.result_ns = Some(per_iter[per_iter.len() / 2]);
            return;
        }
        // Calibrate: grow the per-sample iteration count until one sample
        // costs ~2ms, so short bodies aren't dominated by timer noise.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(body());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(per_iter[per_iter.len() / 2]);
    }
}

/// `true` when the process is a real `cargo bench` invocation (the
/// `--bench` flag is present). Custom measurement code — e.g. interleaved
/// A/B series that criterion's per-function timing cannot express — uses
/// this to skip measurement entirely under `cargo test` smoke runs.
#[must_use]
pub fn is_measuring() -> bool {
    detect_mode() == Mode::Bench
}

/// Records a derived scalar metric (a ratio, a percentage — not a
/// timing) into the bench summary under the current suite. The value
/// lands in the `median_ns` field of `results/bench_summary.json` like
/// any measured median; the name should make the unit obvious. No-op
/// outside `cargo bench`.
pub fn record_metric(name: &str, value: f64) {
    if !is_measuring() {
        return;
    }
    println!("{name:<48} metric: {value:.2}");
    RESULTS.lock().expect("results lock").push((name.to_string(), value));
}

fn run_one<F>(mode: Mode, samples: usize, throughput: Option<Throughput>, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { mode, samples, result_ns: None };
    f(&mut b);
    if mode == Mode::Test {
        return;
    }
    match b.result_ns {
        Some(ns) => {
            let tput = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: {:.2} Melem/s", n as f64 / ns * 1e3)
                }
                Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
                    format!("  thrpt: {:.2} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64)
                }
                None => String::new(),
            };
            println!("{name:<48} time: {}{tput}", format_ns(ns));
            RESULTS.lock().expect("results lock").push((name.to_string(), ns));
        }
        None => println!("{name:<48} (no Bencher::iter call)"),
    }
}

// ---------------------------------------------------------------------------
// Bench-trajectory summary (results/bench_summary.json)
// ---------------------------------------------------------------------------

/// One measured benchmark in the summary file.
#[derive(Clone, PartialEq, Debug)]
pub struct SummaryEntry {
    /// Bench suite (the bench target's name, e.g. `substrates`).
    pub suite: String,
    /// Full benchmark id (`group/name`).
    pub name: String,
    /// Median time per iteration in nanoseconds.
    pub median_ns: f64,
}

/// The suite name of the running bench binary: the executable's file stem
/// with cargo's trailing `-<hash>` stripped.
fn current_suite() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Parses entries previously written by [`write_summary_file`]. The format
/// is our own (one object per line); unparsable lines are skipped.
fn parse_summary(text: &str) -> Vec<SummaryEntry> {
    // String fields end at the closing quote (ids may legally contain
    // ',' or '}'); the numeric field ends at the object terminators.
    fn field<'a>(line: &'a str, key: &str, ends: &[char]) -> Option<&'a str> {
        let start = line.find(key)? + key.len();
        let rest = &line[start..];
        let end = rest.find(ends)?;
        Some(&rest[..end])
    }
    text.lines()
        .filter_map(|line| {
            Some(SummaryEntry {
                suite: field(line, "\"suite\":\"", &['"'])?.to_string(),
                name: field(line, "\"name\":\"", &['"'])?.to_string(),
                median_ns: field(line, "\"median_ns\":", &[',', '}'])?.parse().ok()?,
            })
        })
        .collect()
}

fn render_summary(entries: &[SummaryEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        assert!(
            !e.suite.contains(['"', '\\']) && !e.name.contains(['"', '\\']),
            "bench ids must not need JSON escaping: {}/{}",
            e.suite,
            e.name
        );
        out.push_str(&format!(
            "  {{\"suite\":\"{}\",\"name\":\"{}\",\"median_ns\":{:.1}}}{}\n",
            e.suite,
            e.name,
            e.median_ns,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

/// Merges `fresh` into the summary at `path`: entries from other suites
/// are kept, stale entries of the same suite are replaced.
fn write_summary_file(path: &std::path::Path, suite: &str, fresh: &[(String, f64)]) {
    let mut entries: Vec<SummaryEntry> = std::fs::read_to_string(path)
        .map(|t| parse_summary(&t))
        .unwrap_or_default()
        .into_iter()
        .filter(|e| e.suite != suite)
        .collect();
    entries.extend(fresh.iter().map(|(name, ns)| SummaryEntry {
        suite: suite.to_string(),
        name: name.clone(),
        median_ns: *ns,
    }));
    entries.sort_by(|a, b| (&a.suite, &a.name).cmp(&(&b.suite, &b.name)));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, render_summary(&entries)).expect("write bench summary");
}

/// The summary file location: `$LACC_BENCH_SUMMARY` when set, else
/// `results/bench_summary.json` at the workspace root (cargo runs bench
/// binaries with the *package* directory as CWD, so a relative path
/// would scatter summaries across crates; this shim is vendored two
/// levels below the root).
fn summary_path() -> std::path::PathBuf {
    match std::env::var_os("LACC_BENCH_SUMMARY") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/bench_summary.json"),
    }
}

/// Writes this run's medians into the summary file (no-op outside
/// `cargo bench`, i.e. when nothing was measured). Called by
/// [`criterion_main!`]; callable directly for custom harnesses.
pub fn write_bench_summary() {
    let fresh = std::mem::take(&mut *RESULTS.lock().expect("results lock"));
    if fresh.is_empty() {
        return;
    }
    let suite = current_suite();
    let path = summary_path();
    write_summary_file(&path, &suite, &fresh);
    println!("bench summary: {} entries merged into {}", fresh.len(), path.display());
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1e6 {
        format!("{:.2} µs/iter", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms/iter", ns / 1e6)
    } else {
        format!("{:.3} s/iter", ns / 1e9)
    }
}

/// Defines a function running a list of benchmark functions, mirroring
/// criterion's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` for a bench target (use with `harness = false`). After
/// all groups run, measured medians are merged into
/// `results/bench_summary.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_bench_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        // Unit tests carry no --bench flag, so iter must execute exactly once.
        let mut c = Criterion::default();
        let mut runs = 0;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn summary_render_parse_round_trips() {
        let entries = vec![
            SummaryEntry { suite: "s1".into(), name: "g/a".into(), median_ns: 12.5 },
            // Ids with ',' and '}' are legal and must survive the trip.
            SummaryEntry { suite: "s1".into(), name: "mix{a,b}".into(), median_ns: 7.0 },
            SummaryEntry { suite: "s2".into(), name: "b".into(), median_ns: 3000.0 },
        ];
        let text = render_summary(&entries);
        assert_eq!(parse_summary(&text), entries);
    }

    #[test]
    fn summary_merge_replaces_own_suite_only() {
        let dir = std::env::temp_dir().join(format!("lacc_summary_{}", std::process::id()));
        let path = dir.join("bench_summary.json");
        write_summary_file(&path, "alpha", &[("one".into(), 1.0), ("two".into(), 2.0)]);
        write_summary_file(&path, "beta", &[("x".into(), 9.0)]);
        // Re-running alpha replaces its stale entries, keeps beta's.
        write_summary_file(&path, "alpha", &[("one".into(), 5.0)]);
        let got = parse_summary(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(
            got,
            vec![
                SummaryEntry { suite: "alpha".into(), name: "one".into(), median_ns: 5.0 },
                SummaryEntry { suite: "beta".into(), name: "x".into(), median_ns: 9.0 },
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_name_strips_cargo_hash() {
        // current_suite reads argv[0]; test the stripping rule directly.
        for (stem, want) in [
            ("substrates-30d3ab19dc55f31a", "substrates"),
            ("figures", "figures"),
            ("my-bench-suite", "my-bench-suite"),
        ] {
            let got = match stem.rsplit_once('-') {
                Some((base, hash))
                    if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
                {
                    base.to_string()
                }
                _ => stem.to_string(),
            };
            assert_eq!(got, want);
        }
    }
}
