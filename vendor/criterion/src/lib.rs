//! Offline shim for the subset of the `criterion` 0.5 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the bench suites
//! link against this minimal harness instead. It mirrors criterion's
//! runtime contract:
//!
//! * under `cargo bench` (cargo passes `--bench` to the target) every
//!   `Bencher::iter` call is timed over warmup + measured samples and a
//!   `name  time: [median ns/iter]` line is printed;
//! * under `cargo test` (no `--bench` argument) each benchmark body runs
//!   its closure once, so benches are continuously smoke-tested without
//!   paying measurement time — the same behavior real criterion has.
//!
//! Statistical machinery (outlier analysis, HTML reports, comparisons) is
//! intentionally absent.

use std::time::{Duration, Instant};

/// An opaque barrier against the optimizer, same contract as
/// `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group. Recorded and echoed in
/// bench output; no derived rates are computed.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Invoked by `cargo bench`: measure and report.
    Bench,
    /// Invoked by `cargo test` (or directly): run each body once.
    Test,
}

fn detect_mode() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Bench
    } else {
        Mode::Test
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, mode: detect_mode() }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.mode, self.sample_size, None, &id.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion.mode, samples, self.throughput, &full, f);
        self
    }

    /// Groups report nothing extra on drop; `finish` exists for API parity.
    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` is where timing happens.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    /// Median duration of one iteration, filled in by `iter` in bench mode.
    result_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut body: F)
    where
        F: FnMut() -> O,
    {
        if self.mode == Mode::Test {
            black_box(body());
            return;
        }
        // Calibrate: grow the per-sample iteration count until one sample
        // costs ~2ms, so short bodies aren't dominated by timer noise.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(body());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(per_iter[per_iter.len() / 2]);
    }
}

fn run_one<F>(mode: Mode, samples: usize, throughput: Option<Throughput>, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { mode, samples, result_ns: None };
    f(&mut b);
    if mode == Mode::Test {
        return;
    }
    match b.result_ns {
        Some(ns) => {
            let tput = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: {:.2} Melem/s", n as f64 / ns * 1e3)
                }
                Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
                    format!("  thrpt: {:.2} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64)
                }
                None => String::new(),
            };
            println!("{name:<48} time: {}{tput}", format_ns(ns));
        }
        None => println!("{name:<48} (no Bencher::iter call)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1e6 {
        format!("{:.2} µs/iter", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms/iter", ns / 1e6)
    } else {
        format!("{:.3} s/iter", ns / 1e9)
    }
}

/// Defines a function running a list of benchmark functions, mirroring
/// criterion's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` for a bench target (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        // Unit tests carry no --bench flag, so iter must execute exactly once.
        let mut c = Criterion::default();
        let mut runs = 0;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
