//! Strategy combinators: how random inputs are described and sampled.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree: a strategy is a sampler
/// plus an optional [`shrink`](Strategy::shrink) step proposing smaller
/// variants of a failing value. `sample` takes `&self` so strategies
/// compose freely and can be boxed ([`boxed`], [`Union`]).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `v`, most aggressive first. The runner
    /// greedily walks to the first candidate that still fails and repeats,
    /// so candidates must stay inside the strategy's domain. The default —
    /// no candidates — makes a value irreducible (`Just`, `prop_map`,
    /// `prop_oneof!`, custom strategies).
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps sampled values through `f` (proptest's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        (**self).shrink(v)
    }
}

/// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies of one value type
/// (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Shrink candidates for a numeric value with lower bound `lo`: jump to
/// the minimum, then halve the distance, then step down by one. Greedy
/// first-failure descent over these converges in O(log v) retries.
fn shrink_numeric<T>(lo: T, v: T) -> Vec<T>
where
    T: Copy + PartialOrd + PartialEq + core::ops::Add<Output = T> + core::ops::Sub<Output = T>,
    T: From<u8> + core::ops::Div<Output = T>,
{
    let mut out = Vec::new();
    if v > lo {
        out.push(lo);
        let mid = lo + (v - lo) / T::from(2u8);
        if mid != lo && mid != v {
            out.push(mid);
        }
        let prev = v - T::from(1u8);
        if prev != lo && prev != mid {
            out.push(prev);
        }
    }
    out
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_numeric(self.start, *v)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    // Avoid overflow in the exclusive upper bound; MAX
                    // itself then has marginally lower probability, which
                    // is irrelevant for property sampling.
                    rng.gen_range(lo..hi) // lossy but total
                } else {
                    rng.gen_range(lo..hi + 1)
                }
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_numeric(*self.start(), *v)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut c = v.clone();
                        c.$idx = cand;
                        out.push(c);
                    }
                )+
                out
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// `proptest::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: drop one element (length stays in the
        // strategy's range), front elements first so prefixes minimize.
        if v.len() > self.len.start {
            for i in 0..v.len() {
                let mut c = v.clone();
                c.remove(i);
                out.push(c);
            }
        }
        // Then element-wise shrinks, holding the shape fixed.
        for (i, elem) in v.iter().enumerate() {
            for cand in self.element.shrink(elem) {
                let mut c = v.clone();
                c[i] = cand;
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    crate::proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_and_vec_compose(
            ops in crate::collection::vec((0u8..4, crate::bool::ANY), 1..20),
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for (v, _b) in &ops {
                prop_assert!(*v < 4);
            }
        }

        #[test]
        fn oneof_and_map(b in prop_oneof![Just(true), Just(false)], x in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 10);
            prop_assert_eq!(b, b);
        }
    }

    // Not #[test]: invoked (and expected to panic) by the shrinking tests
    // below.
    crate::proptest! {
        fn vec_len_property_that_fails(v in crate::collection::vec(0u8..10, 0..20)) {
            prop_assert!(v.len() < 3);
        }

        fn numeric_property_that_fails(x in 0u64..1000, flag in crate::bool::ANY) {
            prop_assert!(x < 100 || !flag);
        }
    }

    fn panic_message(f: impl Fn() + std::panic::UnwindSafe) -> String {
        let err = std::panic::catch_unwind(f).expect_err("property should fail");
        err.downcast_ref::<String>().cloned().unwrap_or_default()
    }

    // A failing vec property minimizes to the shortest failing length with
    // every element shrunk to the range minimum.
    #[test]
    fn shrinking_minimizes_vec_counterexamples() {
        let msg = panic_message(vec_len_property_that_fails);
        assert!(msg.contains("minimal failing input: ([0, 0, 0],)"), "got: {msg}");
    }

    // Numeric args descend to the smallest failing value; the bool that
    // the failure needs stays true.
    #[test]
    fn shrinking_minimizes_numbers_and_keeps_needed_flags() {
        let msg = panic_message(numeric_property_that_fails);
        assert!(msg.contains("minimal failing input: (100, true)"), "got: {msg}");
    }

    #[test]
    fn shrink_candidates_stay_in_range() {
        let s = 3u64..17;
        for v in 4..17 {
            for c in s.shrink(&v) {
                assert!(s.contains(&c) && c < v, "candidate {c} for {v}");
            }
        }
        assert!(s.shrink(&3).is_empty());
    }
}
