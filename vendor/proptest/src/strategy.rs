//! Strategy combinators: how random inputs are described and sampled.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a sampler. `sample` takes `&self` so strategies compose freely and
/// can be boxed ([`boxed`], [`Union`]).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f` (proptest's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies of one value type
/// (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    // Avoid overflow in the exclusive upper bound; MAX
                    // itself then has marginally lower probability, which
                    // is irrelevant for property sampling.
                    rng.gen_range(lo..hi) // lossy but total
                } else {
                    rng.gen_range(lo..hi + 1)
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);

/// `proptest::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    crate::proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_and_vec_compose(
            ops in crate::collection::vec((0u8..4, crate::bool::ANY), 1..20),
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for (v, _b) in &ops {
                prop_assert!(*v < 4);
            }
        }

        #[test]
        fn oneof_and_map(b in prop_oneof![Just(true), Just(false)], x in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 10);
            prop_assert_eq!(b, b);
        }
    }
}
