//! Offline shim for the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment has no network access, so this crate implements
//! random-input property testing with the same *surface* as proptest —
//! the [`proptest!`] macro, range/tuple/`vec`/`prop_map` strategies,
//! `prop_assert*`, [`prop_oneof!`] and [`ProptestConfig`] — plus basic
//! input shrinking: when a case fails, the runner greedily walks the
//! [`strategy::Strategy::shrink`] candidates (bounded by
//! `max_shrink_iters`) and reports the smallest input that still fails.
//! `prop_map`/`prop_oneof!` values are irreducible (no value tree), so
//! shrinking stops at the composite level for those. Seeds are derived
//! from the test name, so runs are fully deterministic and failures
//! reproduce.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy;

pub mod collection {
    pub use crate::strategy::vec;
}

/// `proptest::bool::ANY` — samples `true`/`false` uniformly.
pub mod bool {
    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut crate::TestRng) -> bool {
            rand::Rng::gen::<bool>(rng)
        }
        fn shrink(&self, v: &bool) -> Vec<bool> {
            if *v {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

/// The RNG driving all strategies.
pub type TestRng = SmallRng;

/// Failure raised by `prop_assert*` inside a [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration. `cases` and `max_shrink_iters` are interpreted;
/// `max_global_rejects` exists so `..ProptestConfig::default()`
/// struct-update syntax from real proptest code keeps compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Budget of property re-runs the shrinker may spend minimizing a
    /// failing input. `0` disables shrinking (the original failing input
    /// is reported as-is).
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; `prop_assume` rejections are not implemented.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 512, max_global_rejects: 1024 }
    }
}

/// The runner behind [`proptest!`]: samples `cases` inputs from `strat`,
/// runs `prop` on each, and on failure greedily shrinks the input before
/// panicking with the minimal counterexample found.
///
/// Lives here (rather than inline in the macro) so the closure's argument
/// type is pinned by this signature — tuple-pattern closure parameters
/// don't infer on their own.
///
/// # Panics
///
/// Panics when `prop` fails for any sampled input, reporting the case
/// number and the shrunken input.
pub fn run_property<S>(
    name: &str,
    cfg: &ProptestConfig,
    rng: &mut TestRng,
    strat: &S,
    prop: impl Fn(S::Value) -> Result<(), TestCaseError>,
) where
    S: strategy::Strategy,
    S::Value: Clone + std::fmt::Debug,
{
    for case in 0..cfg.cases {
        let mut vals = strat.sample(rng);
        let mut err = match prop(vals.clone()) {
            Ok(()) => continue,
            Err(e) => e,
        };
        // Greedy descent: jump to the first shrink candidate that still
        // fails, restart from there, stop when no candidate fails (local
        // minimum) or the iteration budget runs out.
        let mut iters: u32 = 0;
        'shrinking: while iters < cfg.max_shrink_iters {
            for cand in strat.shrink(&vals) {
                iters += 1;
                if let Err(e) = prop(cand.clone()) {
                    vals = cand;
                    err = e;
                    continue 'shrinking;
                }
                if iters >= cfg.max_shrink_iters {
                    break 'shrinking;
                }
            }
            break;
        }
        panic!(
            "property '{name}' failed at case {}/{}: {err}\nminimal failing input: {vals:?}",
            case + 1,
            cfg.cases,
        );
    }
}

/// Derives the per-test RNG. Deterministic: seeded by hashing the test
/// name, so every run of the suite samples identical inputs.
#[must_use]
pub fn new_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
            // All arguments form one tuple strategy so the shrinker can
            // minimize them jointly. Components sample in declaration
            // order, identical to sampling each argument separately.
            $crate::run_property(
                stringify!($name),
                &__cfg,
                &mut __rng,
                &($($strat,)+),
                |($($arg,)+)| { $body ::std::result::Result::Ok(()) },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}
