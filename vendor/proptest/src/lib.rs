//! Offline shim for the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment has no network access, so this crate implements
//! random-input property testing with the same *surface* as proptest —
//! the [`proptest!`] macro, range/tuple/`vec`/`prop_map` strategies,
//! `prop_assert*`, [`prop_oneof!`] and [`ProptestConfig`] — but without
//! input shrinking: a failing case reports its case number and seed
//! instead of a minimized input. Seeds are derived from the test name, so
//! runs are fully deterministic and failures reproduce.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy;

pub mod collection {
    pub use crate::strategy::vec;
}

/// `proptest::bool::ANY` — samples `true`/`false` uniformly.
pub mod bool {
    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut crate::TestRng) -> bool {
            rand::Rng::gen::<bool>(rng)
        }
    }
}

/// The RNG driving all strategies.
pub type TestRng = SmallRng;

/// Failure raised by `prop_assert*` inside a [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration. Only `cases` is interpreted; the other fields
/// exist so `..ProptestConfig::default()` struct-update syntax from real
/// proptest code keeps compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; `prop_assume` rejections are not implemented.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0, max_global_rejects: 1024 }
    }
}

/// Derives the per-test RNG. Deterministic: seeded by hashing the test
/// name, so every run of the suite samples identical inputs.
#[must_use]
pub fn new_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __cfg.cases, __e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}
