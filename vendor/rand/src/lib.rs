//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access, so instead of the real
//! crate we vendor a deterministic implementation of exactly the surface
//! the workloads need: `SmallRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods `gen`, `gen_bool`, `gen_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets — so streams
//! are high quality and stable across platforms. Workload generation only
//! requires determinism and reasonable uniformity, not cryptographic
//! strength.

pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_u64_seed(seed)
        }
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain by `Rng::gen`.
pub trait Standard: Sized {
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_standard!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        // Use a high bit: the low bits of some generators are weaker.
        raw >> 63 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            #[allow(clippy::cast_possible_truncation)]
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_uniform!(u8, u16, u32, u64, usize);

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_raw(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_raw())
    }

    /// Returns `true` with probability `p`. Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 random bits give an unbiased comparison against an f64 in [0, 1).
        let unit = (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
        assert!(lo < hi, "gen_range called with an empty range");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire); the rejection loop runs at most
        // a handful of times for any span.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let raw = self.next_raw();
            let (hi128, lo128) = {
                let wide = raw as u128 * span as u128;
                ((wide >> 64) as u64, wide as u64)
            };
            if lo128 <= zone {
                return T::from_u64(lo + hi128);
            }
        }
    }
}

impl Rng for rngs::SmallRng {
    fn next_raw(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "frequency {frac} far from 0.25");
    }
}
